"""CAM-SE cubed-sphere horizontal grid geometry.

CAM's spectral-element dynamical core tiles the sphere with ``6 * ne**2``
quadrilateral elements, each holding a ``np x np`` tensor grid of
Gauss-Lobatto-Legendre (GLL) points.  Shared element edges collapse
duplicate points, so the number of *unique* horizontal grid points is::

    ncol = 6 * ne**2 * (np - 1)**2 + 2

With the paper's ``ne = 30`` and CAM's default ``np = 4`` this yields the
48,602 points quoted in Section 5.1.

This module builds an equiangular gnomonic cubed-sphere point set with that
exact point count: for each face we generate the ``(np-1)*(ne)`` unique GLL
locations per edge direction (dropping each element's last row/column, which
belongs to the neighbouring element), map them gnomonically onto the unit
sphere, deduplicate points shared across face edges, and add the two points
that close the count.  The result is a set of ``ncol`` latitude/longitude
coordinates with associated quadrature areas summing to the sphere area.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = ["CubedSphereGrid", "ncol_for_ne", "NP_DEFAULT"]

#: CAM's default polynomial order parameter (np = 4 GLL points per element
#: edge -> cubic elements).
NP_DEFAULT = 4


def ncol_for_ne(ne: int, np_: int = NP_DEFAULT) -> int:
    """Number of unique horizontal grid points for a cubed-sphere grid.

    Parameters
    ----------
    ne:
        Elements per cube-face edge (paper: 30).
    np_:
        GLL points per element edge (CAM default: 4).

    >>> ncol_for_ne(30)
    48602
    """
    if ne <= 0:
        raise ValueError(f"ne must be positive, got {ne}")
    if np_ < 2:
        raise ValueError(f"np must be at least 2, got {np_}")
    return 6 * ne * ne * (np_ - 1) ** 2 + 2


def _face_to_xyz(face: int, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Map equiangular face coordinates ``(a, b)`` in [-pi/4, pi/4] to 3-D
    unit-sphere points for cube face ``face`` (0..5).

    Faces follow the standard orientation: 0..3 are the equatorial faces
    (+x, +y, -x, -y), 4 is the north (+z) cap and 5 the south (-z) cap.
    """
    x = np.tan(a)
    y = np.tan(b)
    ones = np.ones_like(x)
    if face == 0:
        vec = np.stack([ones, x, y], axis=-1)
    elif face == 1:
        vec = np.stack([-x, ones, y], axis=-1)
    elif face == 2:
        vec = np.stack([-ones, -x, y], axis=-1)
    elif face == 3:
        vec = np.stack([x, -ones, y], axis=-1)
    elif face == 4:
        vec = np.stack([-y, x, ones], axis=-1)
    elif face == 5:
        vec = np.stack([y, x, -ones], axis=-1)
    else:
        raise ValueError(f"face must be in 0..5, got {face}")
    norm = np.linalg.norm(vec, axis=-1, keepdims=True)
    return vec / norm


def _gll_nodes(np_: int) -> np.ndarray:
    """GLL node locations on [-1, 1] for polynomial order ``np_ - 1``.

    The nodes are the roots of ``(1 - x^2) P'_{n}(x)`` with ``n = np_ - 1``;
    we compute them from the eigenvalues of the Jacobi matrix of the
    derivative polynomial, falling back to the analytic values for the
    small orders CAM uses.
    """
    if np_ == 2:
        return np.array([-1.0, 1.0])
    if np_ == 3:
        return np.array([-1.0, 0.0, 1.0])
    if np_ == 4:
        c = 1.0 / np.sqrt(5.0)
        return np.array([-1.0, -c, c, 1.0])
    # General case: interior nodes are roots of P'_{np_-1}.
    legendre = np.polynomial.legendre.Legendre.basis(np_ - 1)
    interior = legendre.deriv().roots()
    return np.concatenate([[-1.0], np.sort(interior.real), [1.0]])


@dataclass(frozen=True)
class CubedSphereGrid:
    """An ``ne``-resolution cubed-sphere grid with unique GLL points.

    Attributes
    ----------
    ne:
        Elements per cube-face edge.
    np_:
        GLL points per element edge.
    lat, lon:
        Latitude/longitude in degrees, shape ``(ncol,)``.
    area:
        Quadrature weight per point (normalized to sum to ``4*pi``).
    """

    ne: int
    np_: int
    lat: np.ndarray
    lon: np.ndarray
    area: np.ndarray

    @property
    def ncol(self) -> int:
        """Number of horizontal grid points."""
        return self.lat.shape[0]

    @property
    def xyz(self) -> np.ndarray:
        """Unit-sphere Cartesian coordinates, shape ``(ncol, 3)``."""
        latr = np.deg2rad(self.lat)
        lonr = np.deg2rad(self.lon)
        coslat = np.cos(latr)
        return np.stack(
            [coslat * np.cos(lonr), coslat * np.sin(lonr), np.sin(latr)], axis=-1
        )

    @classmethod
    def create(cls, ne: int, np_: int = NP_DEFAULT) -> "CubedSphereGrid":
        """Build the grid for the given resolution (cached)."""
        return _create_grid(ne, np_)

    def global_mean(self, field: np.ndarray,
                    mask: np.ndarray | None = None) -> float:
        """Area-weighted global mean of ``field``.

        ``field`` may be ``(ncol,)`` or ``(..., ncol)``; the mean is taken
        over the trailing (horizontal) axis and then averaged over any
        leading axes with equal weight (matching CAM's practice of averaging
        level means).  Points where ``mask`` is True are excluded.
        """
        field = np.asarray(field, dtype=np.float64)
        if field.shape[-1] != self.ncol:
            raise ValueError(
                f"field trailing axis {field.shape[-1]} != ncol {self.ncol}"
            )
        w = self.area
        if mask is not None:
            valid = ~np.asarray(mask, dtype=bool)
            w = np.where(valid, w, 0.0)
            total = np.sum(w, axis=-1)
            if np.any(total == 0):
                raise ValueError("mask excludes every grid point")
            return float(np.mean(np.sum(field * w, axis=-1) / total))
        return float(np.mean(field @ w) / np.sum(w))


@lru_cache(maxsize=8)
def _create_grid(ne: int, np_: int) -> CubedSphereGrid:
    expected = ncol_for_ne(ne, np_)

    # Unique GLL abscissae along a face edge: each element contributes its
    # first (np_-1) nodes; the final node of the final element belongs to the
    # adjacent face and is recovered by cross-face deduplication.
    nodes = _gll_nodes(np_)  # on [-1, 1]
    offsets = nodes[:-1]  # first np_-1 nodes of each element
    # Element k spans [k, k+1] in element coordinates on [0, ne].
    elem = np.arange(ne)[:, None]
    coords = (elem + (offsets[None, :] + 1.0) / 2.0).ravel()  # in [0, ne)
    # Include the far edge so faces share their boundary points; duplicates
    # collapse in the deduplication step below.
    coords = np.concatenate([coords, [float(ne)]])
    # Map to equiangular coordinate in [-pi/4, pi/4].
    alpha = (coords / ne - 0.5) * (np.pi / 2.0)

    # Element-major point ordering, as in CAM-SE history files: the GLL
    # points of one spectral element are contiguous, and elements follow in
    # face raster order.  This keeps consecutive indices spatially adjacent
    # (important for predictive compressors, which see the file layout and
    # not the grid — selection criterion 5 in Section 3.1).
    side = alpha.shape[0]
    ii, jj = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    elem_i = np.minimum(ii // (np_ - 1), ne - 1)
    elem_j = np.minimum(jj // (np_ - 1), ne - 1)
    # Serpentine traversal at both levels (alternate rows reversed) so the
    # end of one row is spatially adjacent to the start of the next —
    # consecutive indices never jump across the face.
    serp_elem_j = np.where(elem_i % 2 == 0, elem_j, ne - 1 - elem_j)
    within_i = ii - elem_i * (np_ - 1)
    within_j = jj - elem_j * (np_ - 1)
    serp_within_j = np.where(within_i % 2 == 0, within_j,
                             np_ - 1 - within_j)
    order = np.lexsort(
        (
            serp_within_j.ravel(),
            within_i.ravel(),
            serp_elem_j.ravel(),
            elem_i.ravel(),
        )
    )
    points = []
    for face in range(6):
        aa, bb = np.meshgrid(alpha, alpha, indexing="ij")
        face_xyz = _face_to_xyz(face, aa.ravel(), bb.ravel())
        points.append(face_xyz[order])
    xyz = np.concatenate(points, axis=0)

    # Deduplicate points shared along face edges and corners.
    quant = np.round(xyz / 1e-9).astype(np.int64)
    _, unique_idx = np.unique(quant, axis=0, return_index=True)
    xyz = xyz[np.sort(unique_idx)]

    if xyz.shape[0] != expected:
        raise AssertionError(
            f"grid construction produced {xyz.shape[0]} points, "
            f"expected {expected} for ne={ne}, np={np_}"
        )

    lat = np.rad2deg(np.arcsin(np.clip(xyz[:, 2], -1.0, 1.0)))
    lon = np.rad2deg(np.arctan2(xyz[:, 1], xyz[:, 0])) % 360.0

    # Quadrature areas: approximate each point's share of the sphere by the
    # inverse local point density (1 / sum of nearby-point kernel), then
    # normalize to 4*pi.  For verification metrics only relative weights
    # matter; this keeps construction O(ncol log ncol).
    area = _voronoi_like_area(xyz)

    return CubedSphereGrid(ne=ne, np_=np_, lat=lat, lon=lon, area=area)


def _voronoi_like_area(xyz: np.ndarray) -> np.ndarray:
    """Approximate per-point quadrature areas from nearest-neighbour spacing.

    Each point's weight is proportional to the square of the distance to its
    nearest neighbour (a proxy for the local cell size on a quasi-uniform
    grid), normalized so the weights sum to the sphere area ``4*pi``.
    """
    from scipy.spatial import cKDTree

    tree = cKDTree(xyz)
    # k=2: first neighbour is the point itself.
    dist, _ = tree.query(xyz, k=2)
    spacing = dist[:, 1]
    weights = spacing**2
    weights *= 4.0 * np.pi / weights.sum()
    return weights
