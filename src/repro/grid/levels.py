"""Hybrid sigma-pressure vertical coordinate (CAM's vertical levels).

CAM uses a hybrid coordinate in which pressure at level ``k`` is::

    p(k) = hyam(k) * p0 + hybm(k) * ps

with ``p0 = 1000 hPa`` the reference pressure and ``ps`` the surface
pressure.  Near the model top the coordinate is purely pressure-based
(``hybm = 0``); near the surface it is terrain-following (``hyam -> 0``,
``hybm -> 1``).  The paper's grid has 30 levels.

We generate coefficient profiles with that standard structure so 3-D
variables have a physically-shaped vertical dimension (e.g. geopotential
height Z3 spanning ~40 m to ~38 km, Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = ["HybridLevels", "P0_PA"]

#: Reference pressure (Pa).
P0_PA = 100_000.0


@dataclass(frozen=True)
class HybridLevels:
    """Vertical level structure with hybrid coefficients at midpoints.

    Attributes
    ----------
    hyam, hybm:
        Hybrid A (pressure) and B (sigma) coefficients at level midpoints,
        ordered top-of-model first, shape ``(nlev,)``.
    """

    hyam: np.ndarray
    hybm: np.ndarray

    @property
    def nlev(self) -> int:
        """Number of vertical levels."""
        return self.hyam.shape[0]

    @classmethod
    def create(cls, nlev: int) -> "HybridLevels":
        """Build a CAM-like coefficient profile with ``nlev`` levels."""
        return _create_levels(nlev)

    def pressure(self, ps: np.ndarray | float = P0_PA) -> np.ndarray:
        """Midpoint pressures (Pa) for surface pressure ``ps``.

        Broadcasts: scalar ``ps`` yields shape ``(nlev,)``; an array of
        shape ``(ncol,)`` yields ``(nlev, ncol)``.
        """
        ps = np.asarray(ps, dtype=np.float64)
        return self.hyam[:, *([None] * ps.ndim)] * P0_PA + (
            self.hybm[:, *([None] * ps.ndim)] * ps
        )

    def height_profile(self) -> np.ndarray:
        """Approximate geometric heights (m) of the midpoints via the
        hypsometric equation with an isothermal 250 K scale atmosphere."""
        scale_height = 287.0 * 250.0 / 9.80616  # R * T / g  ~ 7.3 km
        p = self.pressure()
        return scale_height * np.log(P0_PA / p)


@lru_cache(maxsize=8)
def _create_levels(nlev: int) -> HybridLevels:
    if nlev <= 0:
        raise ValueError(f"nlev must be positive, got {nlev}")
    # Target midpoint pressures: geometric spacing from ~3.6 hPa at model
    # top to ~993 hPa near the surface, mimicking CAM5's L30 grid.
    top, bottom = 360.0, 99_300.0  # Pa
    p_mid = np.geomspace(top, bottom, nlev)
    sigma = p_mid / P0_PA
    # Transition function: pure pressure above ~100 hPa, blending to pure
    # sigma at the surface (the standard hybrid construction).
    s_top = 0.1
    blend = np.clip((sigma - s_top) / (1.0 - s_top), 0.0, 1.0) ** 1.3
    hybm = sigma * blend
    hyam = sigma - hybm
    return HybridLevels(hyam=hyam, hybm=hybm)
