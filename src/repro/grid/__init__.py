"""Grid substrate: the CAM-SE cubed-sphere-like horizontal grid and the
hybrid sigma-pressure vertical coordinate.

The paper (Section 5.1) uses the spectral-element version of CAM at
``ne = 30`` resolution, a 1-degree global grid with 48,602 horizontal grid
points and 30 vertical levels.  This package reproduces that grid geometry:
point counts, latitude/longitude coordinates, cell areas, vertical level
coefficients, and a horizontal adjacency graph used by locality-aware
compressors and the gradient metric.
"""

from repro.grid.cubed_sphere import CubedSphereGrid, ncol_for_ne
from repro.grid.levels import HybridLevels
from repro.grid.neighbors import adjacency_graph, neighbor_index_array

__all__ = [
    "CubedSphereGrid",
    "ncol_for_ne",
    "HybridLevels",
    "adjacency_graph",
    "neighbor_index_array",
]
