"""Horizontal adjacency for cubed-sphere grid points.

Some compressors (delta/Lorenzo prediction over space, cf. the "Climate
Compression" method of Bicer et al. discussed in Section 2.2) and the
field-gradient verification metric need to know which grid points are
spatial neighbours.  On the unstructured point list this is a k-nearest-
neighbour graph; we expose it both as a :mod:`networkx` graph (for
analysis/tests) and as a dense index array (for vectorized numerics).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.grid.cubed_sphere import CubedSphereGrid

__all__ = ["adjacency_graph", "neighbor_index_array", "great_circle_distances"]


def neighbor_index_array(grid: CubedSphereGrid, k: int = 4) -> np.ndarray:
    """Indices of the ``k`` nearest neighbours of each grid point.

    Returns an ``(ncol, k)`` int array; row ``i`` lists the nearest other
    points to point ``i``, closest first.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k >= grid.ncol:
        raise ValueError(f"k={k} must be smaller than ncol={grid.ncol}")
    from scipy.spatial import cKDTree

    xyz = grid.xyz
    tree = cKDTree(xyz)
    _, idx = tree.query(xyz, k=k + 1)
    # Column 0 is the point itself.
    return idx[:, 1:]


def adjacency_graph(grid: CubedSphereGrid, k: int = 4) -> nx.Graph:
    """Build a symmetric k-nearest-neighbour graph over the grid points.

    Nodes are grid-point indices; edges carry a ``distance`` attribute with
    the great-circle distance (radians on the unit sphere).
    """
    idx = neighbor_index_array(grid, k=k)
    xyz = grid.xyz
    graph = nx.Graph()
    graph.add_nodes_from(range(grid.ncol))
    src = np.repeat(np.arange(grid.ncol), k)
    dst = idx.ravel()
    chord = np.linalg.norm(xyz[src] - xyz[dst], axis=1)
    dist = 2.0 * np.arcsin(np.clip(chord / 2.0, 0.0, 1.0))
    graph.add_weighted_edges_from(
        zip(src.tolist(), dst.tolist(), dist.tolist()), weight="distance"
    )
    return graph


def great_circle_distances(grid: CubedSphereGrid,
                           neighbors: np.ndarray) -> np.ndarray:
    """Great-circle distances (radians) from each point to given neighbours.

    ``neighbors`` is an ``(ncol, k)`` index array as produced by
    :func:`neighbor_index_array`.
    """
    xyz = grid.xyz
    chord = np.linalg.norm(xyz[:, None, :] - xyz[neighbors], axis=-1)
    return 2.0 * np.arcsin(np.clip(chord / 2.0, 0.0, 1.0))
