"""Seed-driven fault plans: break chosen tasks in chosen ways.

A :class:`FaultPlan` wraps a task function so that selected task indices
misbehave on selected attempts:

``raise``
    The attempt raises (default ``ValueError``), exercising the
    retry/exhaustion path.

``hang``
    The attempt sleeps on the injected clock before computing, long
    enough to trip a ``task_timeout``.  With a
    :class:`~repro.testing.clock.FakeClock` on the serial backend the
    hang is virtual; on thread/process backends it is a real (finite)
    sleep that the deadline machinery kills or abandons.

``crash``
    Inside a real worker process the attempt calls ``os._exit`` — the
    pool breaks exactly as a segfaulting codec would break it.  In the
    test process itself (serial/thread backends, where exiting would
    kill pytest) it raises :class:`~repro.parallel.WorkerCrashError`,
    which the executor books with identical crash accounting.

``corrupt``
    The attempt *succeeds* with a wrong value (:data:`CORRUPTED` by
    default) — the executor cannot detect this; the chaos suite uses it
    to prove that verification layers downstream must.

Attempt numbers are counted with atomic marker files
(``O_CREAT | O_EXCL``) in a shared workdir, so "fail twice, then
succeed" means the same schedule whether attempts run in one process or
across a twice-rebuilt pool.  :meth:`FaultPlan.seeded` draws the whole
schedule from a :class:`random.Random` seed for chaos-style sweeps that
are still exactly reproducible.
"""

from __future__ import annotations

import multiprocessing
import os
import random
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.parallel.clock import SYSTEM_CLOCK, Clock
from repro.parallel.failures import WorkerCrashError

__all__ = ["CORRUPTED", "Fault", "FaultPlan"]

#: Sentinel a ``corrupt`` fault returns when no value is specified.
CORRUPTED = "<corrupted>"

#: Fault kinds a plan can schedule.
KINDS = ("raise", "hang", "crash", "corrupt")


@dataclass(frozen=True)
class Fault:
    """One scheduled misbehaviour: ``kind`` at ``index``, attempts 1..``times``."""

    index: int          #: task index the fault applies to
    kind: str           #: ``raise`` | ``hang`` | ``crash`` | ``corrupt``
    times: int = 1      #: how many attempts misbehave before recovering
    message: str = ""   #: ``raise``: exception text
    duration: float = 60.0  #: ``hang``: sleep length (seconds)
    value: Any = CORRUPTED  #: ``corrupt``: the wrong result to return

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(KINDS)}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")


def index_of(item: Any) -> int:
    """The task index an argument stands for.

    Fault-plan task functions conventionally take the task index itself
    (or a tuple starting with it) as the argument, which keeps plans
    independent of the payload type.
    """
    if isinstance(item, (tuple, list)) and item:
        return int(item[0])
    return int(item)


class FaultPlan:
    """A deterministic schedule of faults for one executor map.

    ``workdir`` must be a writable directory private to the plan (a
    pytest ``tmp_path``); it holds the atomic attempt markers that make
    counting correct across threads, processes, and rebuilt pools.
    """

    def __init__(self, workdir: "str | os.PathLike[str]") -> None:
        self.workdir = os.fspath(workdir)
        if not os.path.isdir(self.workdir):
            raise ValueError(
                f"FaultPlan workdir {self.workdir!r} is not a directory")
        self.faults: dict[int, Fault] = {}

    # -- authoring ------------------------------------------------------------

    def add(self, fault: Fault) -> "FaultPlan":
        if fault.index in self.faults:
            raise ValueError(f"task {fault.index} already has a fault")
        self.faults[fault.index] = fault
        return self

    def fail(self, index: int, times: int = 1,
             message: str = "") -> "FaultPlan":
        """Schedule ``times`` raising attempts at ``index``."""
        return self.add(Fault(index=index, kind="raise", times=times,
                              message=message))

    def hang(self, index: int, duration: float = 60.0,
             times: int = 1) -> "FaultPlan":
        """Schedule ``times`` hanging attempts at ``index``."""
        return self.add(Fault(index=index, kind="hang", times=times,
                              duration=duration))

    def crash(self, index: int, times: int = 1) -> "FaultPlan":
        """Schedule ``times`` worker-killing attempts at ``index``."""
        return self.add(Fault(index=index, kind="crash", times=times))

    def corrupt(self, index: int, value: Any = CORRUPTED,
                times: int = 1) -> "FaultPlan":
        """Schedule ``times`` silently-wrong attempts at ``index``."""
        return self.add(Fault(index=index, kind="corrupt", times=times,
                              value=value))

    @classmethod
    def seeded(cls, workdir: "str | os.PathLike[str]", seed: int,
               n_tasks: int, n_faults: int,
               kinds: Iterable[str] = ("raise", "crash"),
               times: int = 1, duration: float = 60.0) -> "FaultPlan":
        """Draw ``n_faults`` faults over ``n_tasks`` tasks from ``seed``.

        The same seed always yields the same schedule — chaos tests stay
        bisectable.  ``hang`` is excluded by default because it needs a
        timeout configured to terminate.
        """
        rng = random.Random(seed)
        kinds = tuple(kinds)
        plan = cls(workdir)
        for index in sorted(rng.sample(range(n_tasks),
                                       min(n_faults, n_tasks))):
            plan.add(Fault(index=index, kind=rng.choice(kinds),
                           times=times, duration=duration))
        return plan

    # -- execution ------------------------------------------------------------

    def wrap(self, fn: Callable, clock: Clock | None = None) -> "_FaultyFn":
        """``fn`` with this plan's faults applied (picklable if ``fn`` is)."""
        return _FaultyFn(fn, dict(self.faults), self.workdir,
                         clock if clock is not None else SYSTEM_CLOCK)

    def attempts(self, index: int) -> int:
        """Attempts recorded so far for task ``index`` (marker count)."""
        n = 0
        while os.path.exists(self._marker(index, n + 1)):
            n += 1
        return n

    def _marker(self, index: int, attempt: int) -> str:
        return os.path.join(self.workdir, f"task{index}.attempt{attempt}")


class _FaultyFn:
    """The wrapped task function; module-level so the pool can pickle it."""

    def __init__(self, fn: Callable, faults: dict[int, Fault],
                 workdir: str, clock: Clock) -> None:
        self.fn = fn
        self.faults = faults
        self.workdir = workdir
        self.clock = clock

    def _claim_attempt(self, index: int) -> int:
        """Atomically claim and return this call's attempt number."""
        attempt = 1
        while True:
            path = os.path.join(self.workdir,
                                f"task{index}.attempt{attempt}")
            try:
                os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                return attempt
            except FileExistsError:
                attempt += 1

    def __call__(self, item: Any) -> Any:
        index = index_of(item)
        fault = self.faults.get(index)
        if fault is None:
            return self.fn(item)
        attempt = self._claim_attempt(index)
        if attempt > fault.times:
            return self.fn(item)  # recovered
        if fault.kind == "raise":
            message = fault.message or (
                f"injected fault at task {index} (attempt {attempt})")
            raise ValueError(message)
        if fault.kind == "hang":
            self.clock.sleep(fault.duration)
            return self.fn(item)
        if fault.kind == "crash":
            if multiprocessing.parent_process() is not None:
                os._exit(13)  # a real worker dies for real
            raise WorkerCrashError(
                f"injected crash at task {index} (attempt {attempt})")
        return fault.value  # corrupt
