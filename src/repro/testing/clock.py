"""A virtual clock: sleeps advance time instead of consuming it."""

from __future__ import annotations

import threading

from repro.parallel.clock import Clock

__all__ = ["FakeClock"]


class FakeClock(Clock):
    """Deterministic :class:`~repro.parallel.clock.Clock` for tests.

    ``sleep`` advances the virtual ``now`` and records the request, so a
    test can assert an exact backoff schedule (``clock.sleeps``) without
    waiting for it.  Valid for backoff on every backend (the executor
    sleeps parent-side); valid for *timeouts* only on the ``serial``
    backend, where overruns are measured with this clock — the thread
    and process backends enforce deadlines with real futures.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()
        #: Every ``sleep`` duration requested, in call order.
        self.sleeps: list[float] = []

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        with self._lock:
            self.sleeps.append(seconds)
            if seconds > 0:
                self._now += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        with self._lock:
            self._now += seconds
