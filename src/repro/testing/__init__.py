"""Deterministic fault injection for the execution subsystem.

The chaos suite (``tests/parallel/test_fault_tolerance.py``) must prove
that the executor survives raising, hanging, crashing, and corrupting
tasks — *deterministically*, on every backend, without real worker
crashes outside a real pool and without real sleeps.  This package
provides the two levers:

- :class:`FaultPlan` — a seed-driven schedule of faults keyed by task
  index and attempt number, whose attempt counting works across process
  boundaries (atomic marker files in a shared workdir), so "fail twice
  then succeed" means the same thing on ``serial`` and ``process``;
- :class:`FakeClock` — a virtual :class:`repro.parallel.Clock` whose
  ``sleep`` advances ``now`` instead of blocking, so an exponential
  backoff schedule (or a serial-backend timeout) runs in microseconds.

Ordinary library code must never import this package; it exists for
tests and for reproducing executor bugs in isolation.
"""

from repro.testing.clock import FakeClock
from repro.testing.faults import CORRUPTED, Fault, FaultPlan

__all__ = ["CORRUPTED", "FakeClock", "Fault", "FaultPlan"]
