"""Lint engine: file walking, noqa suppression, rendering.

Suppression comments use the repo-specific marker so they cannot collide
with flake8/ruff semantics:

- ``# repro: noqa[REP003]`` on the offending line suppresses those rules
  for that line (several IDs separated by commas);
- ``# repro: noqa`` suppresses every rule for that line;
- either form on a comment-only line within the first ten lines of a file
  suppresses file-wide.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.check.rules import RULES, Rule, effective_parts

__all__ = ["Finding", "lint_file", "lint_paths", "render_text", "render_json"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<ids>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)
_FILE_LEVEL_WINDOW = 10

#: Sentinel meaning "every rule suppressed".
_ALL = frozenset({"*"})


@dataclass(frozen=True)
class Finding:
    """One lint finding, ready for text or JSON rendering.

    ``symbol`` is the stable identity a whole-program (``--deep``)
    finding anchors to — the bound function's qualname — used by the
    baseline file to match findings across line-number drift.  Per-file
    syntactic findings leave it empty.
    """

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    fix_hint: str
    symbol: str = ""

    def format(self) -> str:
        """``path:line:col: REPxxx [severity] message (hint: ...)``."""
        return (f"{self.path}:{self.line}:{self.col}: {self.rule_id} "
                f"[{self.severity}] {self.message} (hint: {self.fix_hint})")


def _noqa_suppressions(
    source_lines: Sequence[str],
) -> tuple[frozenset[str], dict[int, frozenset[str]]]:
    """File-level and per-line suppressed rule-ID sets."""
    file_level: set[str] = set()
    per_line: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        ids = match.group("ids")
        suppressed = (
            _ALL if ids is None
            else frozenset(p.strip().upper() for p in ids.split(",")
                           if p.strip())
        )
        per_line[lineno] = suppressed
        if lineno <= _FILE_LEVEL_WINDOW and text.lstrip().startswith("#"):
            file_level |= suppressed
    return frozenset(file_level), per_line


def _suppressed(rule_id: str, suppressions: frozenset[str]) -> bool:
    return "*" in suppressions or rule_id in suppressions


def lint_file(path: str | Path,
              select: Iterable[str] | None = None) -> list[Finding]:
    """Lint one Python file; returns findings sorted by position.

    ``select`` restricts checking to the given rule IDs.  A file that does
    not parse produces a single ``REP000`` syntax finding rather than an
    exception, so a broken file cannot hide behind the linter.
    """
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(
            rule_id="REP000", severity="error", path=str(path),
            line=exc.lineno or 1, col=exc.offset or 0,
            message=f"file does not parse: {exc.msg}",
            fix_hint="fix the syntax error",
        )]

    wanted = None if select is None else {s.upper() for s in select}
    parts = effective_parts(str(path))
    file_noqa, line_noqa = _noqa_suppressions(lines)

    findings: list[Finding] = []
    for rule in RULES:
        if wanted is not None and rule.id not in wanted:
            continue
        if not rule.applies(parts):
            continue
        if _suppressed(rule.id, file_noqa):
            continue
        for line, col, message in rule.check(tree, lines, str(path)):
            if _suppressed(rule.id, line_noqa.get(line, frozenset())):
                continue
            findings.append(Finding(
                rule_id=rule.id, severity=rule.severity, path=str(path),
                line=line, col=col, message=message,
                fix_hint=rule.fix_hint,
            ))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def lint_paths(paths: Iterable[str | Path],
               select: Iterable[str] | None = None) -> list[Finding]:
    """Lint files and directory trees (``**/*.py``), deduplicated."""
    files: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in candidates:
            if f not in seen:
                seen.add(f)
                files.append(f)
    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f, select=select))
    return findings


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report, one finding per line plus a summary."""
    if not findings:
        return "repro.check: no findings"
    out = [f.format() for f in findings]
    n_err = sum(f.severity == "error" for f in findings)
    n_warn = len(findings) - n_err
    out.append(f"repro.check: {len(findings)} finding(s) "
               f"({n_err} error(s), {n_warn} warning(s))")
    return "\n".join(out)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report: a JSON object with a findings array."""
    return json.dumps(
        {
            "findings": [asdict(f) for f in findings],
            "count": len(findings),
        },
        indent=2,
    )
