"""Numeric-safety checking for the compression/PVT pipeline.

Two cooperating halves:

- :mod:`repro.check.engine` / :mod:`repro.check.rules` — an AST-based
  static analyzer (``python -m repro.check lint src/``) with repo-specific
  rules (REP001..REP008) that machine-check the invariants the paper's
  methodology depends on: dtype preservation through codecs, seeded
  randomness, tolerance-based float comparisons in the verification
  metrics, picklable parallel entry points, and canonical fill values.
- :mod:`repro.check.sanitize` — a ``REPRO_SANITIZE=1`` runtime sanitizer
  that guards ``Compressor.compress``/``decompress``, the PVT
  z-score/E_nmax paths, and ``parallel_map`` with cheap invariant checks,
  raising structured :class:`SanitizerError`\\ s when a codec or metric
  path silently violates its contract.

The static half never imports production modules (it parses them); the
runtime half hooks into them through :mod:`repro.check.hooks`, which is
dependency-free so that low-level packages can import it without cycles.
"""

from __future__ import annotations

from repro.check.engine import Finding, lint_file, lint_paths, render_json, render_text
from repro.check.hooks import SanitizerError
from repro.check.rules import RULES, Rule
from repro.check.sanitize import sanitize_active, sanitize_guard, sanitized

__all__ = [
    "Finding",
    "RULES",
    "Rule",
    "SanitizerError",
    "lint_file",
    "lint_paths",
    "render_json",
    "render_text",
    "sanitize_active",
    "sanitize_guard",
    "sanitized",
]
