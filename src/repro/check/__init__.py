"""Numeric-safety checking for the compression/PVT pipeline.

Three cooperating parts:

- :mod:`repro.check.engine` / :mod:`repro.check.rules` — an AST-based
  per-file static analyzer (``python -m repro.check lint src/``) with
  repo-specific rules (REP001..REP012) that machine-check the
  invariants the paper's methodology depends on: dtype preservation
  through codecs, seeded randomness, tolerance-based float comparisons
  in the verification metrics, picklable parallel entry points, and
  canonical fill values.
- :mod:`repro.check.flow` — a whole-program layer (``repro lint
  --deep``) that links the import/call graph, finds every callable
  reaching ``Executor``/``parallel_map``/``cached()``, and runs the
  concurrency/determinism rules REP013..REP017 over those bound
  callables.  :mod:`repro.check.baseline` lets strict rules land
  incrementally; ``python -m repro.check graph`` dumps the call graph.
  See ``docs/static-analysis.md`` for the full rule table.
- :mod:`repro.check.sanitize` — a ``REPRO_SANITIZE=1`` runtime
  sanitizer that guards ``Compressor.compress``/``decompress``, the
  PVT z-score/E_nmax paths, and ``parallel_map`` with cheap invariant
  checks, raising structured :class:`SanitizerError`\\ s when a codec
  or metric path silently violates its contract.

The static halves never import production modules (they parse them);
the runtime half hooks into them through :mod:`repro.check.hooks`.
"""

from __future__ import annotations

from repro.check.baseline import BaselineEntry, BaselineError
from repro.check.engine import Finding, lint_file, lint_paths, render_json, render_text
from repro.check.flow import FLOW_RULES, FlowRule, build_program, deep_lint
from repro.check.hooks import SanitizerError
from repro.check.rules import RULES, Rule
from repro.check.sanitize import sanitize_active, sanitize_guard, sanitized

__all__ = [
    "BaselineEntry",
    "BaselineError",
    "FLOW_RULES",
    "Finding",
    "FlowRule",
    "RULES",
    "Rule",
    "SanitizerError",
    "build_program",
    "deep_lint",
    "lint_file",
    "lint_paths",
    "render_json",
    "render_text",
    "sanitize_active",
    "sanitize_guard",
    "sanitized",
]
