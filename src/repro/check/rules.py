"""The REP rule set: repo-specific numeric-safety lint rules.

Each rule carries an ID, severity, rationale, and fix hint, and declares
which part of the tree it applies to via path scoping (so ``compressors``
rules do not fire on ``harness`` code and nothing fires on ``tests``).
Fixture files used by the rule tests live under a ``fixtures/`` directory;
path scoping treats everything *after* the last ``fixtures`` component as
the virtual location, so ``tests/check/fixtures/compressors/x.py`` is
linted as if it lived in a ``compressors`` package.

Adding a rule: write a ``check(tree, lines, path) -> [(line, col, msg)]``
function, construct a :class:`Rule` with a fresh ``REPxxx`` ID, and append
it to :data:`RULES`.  The engine, the noqa machinery, the CLI, and the
"lint src/ is clean" test gate pick it up automatically.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import PurePath
from typing import Callable, Sequence

__all__ = ["Rule", "RULES", "rules_by_id", "effective_parts"]

RawFinding = tuple[int, int, str]
Checker = Callable[[ast.AST, Sequence[str], str], list[RawFinding]]


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, scope, and checker."""

    id: str
    title: str
    severity: str  # "error" | "warning"
    rationale: str
    fix_hint: str
    applies: Callable[[tuple[str, ...]], bool]
    check: Checker


def effective_parts(path: str) -> tuple[str, ...]:
    """Path components used for rule scoping.

    Components after the last ``fixtures`` directory win, so test fixture
    trees mirror the real package layout.
    """
    parts = PurePath(path).parts
    if "fixtures" in parts:
        cut = len(parts) - 1 - parts[::-1].index("fixtures")
        parts = parts[cut + 1:]
    return parts


def _in(*names: str) -> Callable[[tuple[str, ...]], bool]:
    return lambda parts: any(n in parts for n in names)


def _not_tests(parts: tuple[str, ...]) -> bool:
    return "tests" not in parts


# -- AST helpers -------------------------------------------------------------

def _attr_chain(node: ast.AST) -> str:
    """Dotted-name string for Name/Attribute chains (else '')."""
    out: list[str] = []
    while isinstance(node, ast.Attribute):
        out.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        out.append(node.id)
        return ".".join(reversed(out))
    return ""


def _nested_function_names(tree: ast.AST) -> set[str]:
    """Names of functions defined inside another function (unpicklable)."""
    nested: set[str] = set()

    def visit(node: ast.AST, in_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            is_fn = isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            if is_fn and in_function:
                nested.add(child.name)
            visit(child, in_function or is_fn)

    visit(tree, False)
    return nested


# -- REP001 ------------------------------------------------------------------

_FLOAT_DTYPE_ATTRS = {"float16", "float32", "float64", "double", "single",
                      "half", "longdouble"}
_FLOAT_DTYPE_STRINGS = {"f2", "f4", "f8", "<f2", "<f4", "<f8", ">f4", ">f8",
                        "float16", "float32", "float64"}


def _is_float_dtype_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        if node.attr in _FLOAT_DTYPE_ATTRS:
            return True
        return node.attr == "dtype"  # e.g. values.dtype
    if isinstance(node, ast.Name):
        return node.id == "float" or "dtype" in node.id.lower()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in _FLOAT_DTYPE_STRINGS
    return False


def _check_rep001(tree: ast.AST, lines: Sequence[str],
                  path: str) -> list[RawFinding]:
    found: list[RawFinding] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"):
            continue
        target: ast.AST | None = node.args[0] if node.args else None
        for kw in node.keywords:
            if kw.arg == "dtype":
                target = kw.value
        if target is None or not _is_float_dtype_expr(target):
            continue
        if any(kw.arg == "copy" for kw in node.keywords):
            continue
        found.append((
            node.lineno, node.col_offset,
            "float-dtype .astype(...) without an explicit copy= argument",
        ))
    return found


# -- REP002 ------------------------------------------------------------------

_RNG_FACTORIES = {"default_rng", "Generator", "SeedSequence", "MT19937",
                  "PCG64", "PCG64DXSM", "Philox", "SFC64", "RandomState"}


def _check_rep002(tree: ast.AST, lines: Sequence[str],
                  path: str) -> list[RawFinding]:
    found: list[RawFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        parts = chain.split(".")
        tail = parts[-1]
        is_np_random = len(parts) >= 2 and parts[-2] == "random" and \
            parts[0] in ("np", "numpy")
        if is_np_random and tail not in _RNG_FACTORIES:
            found.append((
                node.lineno, node.col_offset,
                f"legacy global-state RNG call np.random.{tail}(...)",
            ))
            continue
        if tail in _RNG_FACTORIES and (is_np_random or len(parts) == 1):
            seeded = bool(node.args) or any(
                kw.arg in ("seed", "bit_generator") for kw in node.keywords
            )
            if not seeded:
                found.append((
                    node.lineno, node.col_offset,
                    f"unseeded RNG construction {tail}()",
                ))
    return found


# -- REP003 ------------------------------------------------------------------

def _is_nonzero_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and node.value != 0.0)


def _check_rep003(tree: ast.AST, lines: Sequence[str],
                  path: str) -> list[RawFinding]:
    found: list[RawFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[i], operands[i + 1]
            if _is_nonzero_float_literal(left) or \
                    _is_nonzero_float_literal(right):
                found.append((
                    node.lineno, node.col_offset,
                    "exact ==/!= against a float literal in a "
                    "verification-metric module",
                ))
    return found


# -- REP004 ------------------------------------------------------------------

def _body_is_noop(body: Sequence[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


def _check_rep004(tree: ast.AST, lines: Sequence[str],
                  path: str) -> list[RawFinding]:
    found: list[RawFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            found.append((node.lineno, node.col_offset,
                          "bare except: hides every failure, including "
                          "KeyboardInterrupt, in a worker/harness path"))
            continue
        names = [node.type] if not isinstance(node.type, ast.Tuple) \
            else list(node.type.elts)
        broad = any(_attr_chain(n).split(".")[-1]
                    in ("Exception", "BaseException") for n in names)
        if broad and _body_is_noop(node.body):
            found.append((node.lineno, node.col_offset,
                          "broad exception silently swallowed "
                          "(except Exception: pass)"))
    return found


# -- REP005 ------------------------------------------------------------------

_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict",
                  "deque", "Counter"}


def _mutable_literal_kind(node: ast.AST) -> str | None:
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        tail = _attr_chain(node.func).split(".")[-1]
        if tail in _MUTABLE_CALLS:
            return tail
    return None


def _check_rep005(tree: ast.AST, lines: Sequence[str],
                  path: str) -> list[RawFinding]:
    found: list[RawFinding] = []
    if not isinstance(tree, ast.Module):
        return found
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        kind = _mutable_literal_kind(value)
        if kind is None:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name.upper() == name:  # ALL_CAPS constant convention
                continue
            if name.startswith("__") and name.endswith("__"):
                continue  # __all__ and friends are interpreter protocol
            found.append((
                stmt.lineno, stmt.col_offset,
                f"module-level mutable {kind} {name!r} in a compressor "
                "module",
            ))
    return found


# -- REP006 ------------------------------------------------------------------

def _check_rep006(tree: ast.AST, lines: Sequence[str],
                  path: str) -> list[RawFinding]:
    found: list[RawFinding] = []
    nested = _nested_function_names(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        chain = _attr_chain(node.func)
        tail = chain.split(".")[-1]
        if tail == "parallel_map" or tail == "submit":
            pool_like = True
        elif tail == "map" and "." in chain:
            base = chain.rsplit(".", 1)[0].lower()
            pool_like = "pool" in base or "executor" in base
        else:
            pool_like = False
        if not pool_like:
            continue
        fn_arg = node.args[0]
        if isinstance(fn_arg, ast.Lambda):
            found.append((node.lineno, node.col_offset,
                          f"lambda passed to {tail}(); process pools need "
                          "a picklable module-level callable"))
        elif isinstance(fn_arg, ast.Name) and fn_arg.id in nested:
            found.append((node.lineno, node.col_offset,
                          f"locally-defined function {fn_arg.id!r} passed "
                          f"to {tail}(); process pools need a picklable "
                          "module-level callable"))
    return found


# -- REP007 ------------------------------------------------------------------

#: CESM's fill value, the generic special-value threshold, and netCDF's
#: default float fill — all of which must come from repro.config.  This
#: tuple is the rule's own definition of the magic values, hence the
#: suppression: it is the one legitimate spelling outside config.py.
_MAGIC_FILLS = (1.0e35, 1.0e34, 9.96921e36)  # repro: noqa[REP007]


def _check_rep007(tree: ast.AST, lines: Sequence[str],
                  path: str) -> list[RawFinding]:
    found: list[RawFinding] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Constant)
                and isinstance(node.value, float)):
            continue
        if any(node.value == magic or node.value == -magic
               for magic in _MAGIC_FILLS):
            found.append((
                node.lineno, node.col_offset,
                f"magic fill/special value literal {node.value!r}",
            ))
    return found


# -- REP008 ------------------------------------------------------------------

_ARRAYISH_NAMES = {"data", "values", "ensemble", "field", "fields", "arr",
                   "array", "original", "reconstructed", "distribution"}
_CONTRACT_WORDS = ("array", "dtype", "shape", "float", "ndarray", "scalar",
                   "values", "field", "ensemble", "mask", "flat", "member",
                   "distribution", "vector", "matrix", "blob")


def _has_arrayish_arg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    args = [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]
    for arg in args:
        if arg.arg in ("self", "cls"):
            continue
        if arg.arg in _ARRAYISH_NAMES:
            return True
        if arg.annotation is not None:
            note = ast.unparse(arg.annotation)
            if "ndarray" in note or "ArrayLike" in note:
                return True
    return False


def _check_rep008(tree: ast.AST, lines: Sequence[str],
                  path: str) -> list[RawFinding]:
    found: list[RawFinding] = []

    def visit(node: ast.AST, depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if depth <= 1 and not child.name.startswith("_"):
                    doc = ast.get_docstring(child)
                    if not doc:
                        found.append((
                            child.lineno, child.col_offset,
                            f"public function {child.name!r} has no "
                            "docstring",
                        ))
                    elif _has_arrayish_arg(child) and not any(
                        word in doc.lower() for word in _CONTRACT_WORDS
                    ):
                        found.append((
                            child.lineno, child.col_offset,
                            f"public function {child.name!r} takes array "
                            "data but its docstring states no dtype/shape "
                            "contract",
                        ))
                visit(child, depth + 2)  # bodies of functions are nested
            elif isinstance(child, ast.ClassDef):
                visit(child, depth + 1)  # methods of top-level classes
            else:
                visit(child, depth)

    visit(tree, 0)
    return found


# -- REP009 ------------------------------------------------------------------

_CLOCK_NAMES = {
    "time", "perf_counter", "monotonic", "process_time",
    "time_ns", "perf_counter_ns", "monotonic_ns", "process_time_ns",
}


def _check_rep009(tree: ast.AST, lines: Sequence[str],
                  path: str) -> list[RawFinding]:
    found: list[RawFinding] = []
    from_imported: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            clocks = [a for a in node.names if a.name in _CLOCK_NAMES]
            if clocks:
                names = ", ".join(a.name for a in clocks)
                from_imported.update(a.asname or a.name for a in clocks)
                found.append((
                    node.lineno, node.col_offset,
                    f"ad-hoc clock import 'from time import {names}'",
                ))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        parts = chain.split(".")
        if len(parts) == 2 and parts[0] == "time" \
                and parts[1] in _CLOCK_NAMES:
            found.append((
                node.lineno, node.col_offset,
                f"ad-hoc wall-clock call {chain}()",
            ))
        elif len(parts) == 1 and parts[0] in from_imported:
            found.append((
                node.lineno, node.col_offset,
                f"ad-hoc wall-clock call {parts[0]}()",
            ))
    return found


# -- REP010 ------------------------------------------------------------------

def _check_rep010(tree: ast.AST, lines: Sequence[str],
                  path: str) -> list[RawFinding]:
    if not isinstance(tree, ast.Module):
        return []
    if ast.get_docstring(tree) is not None:
        return []
    return [(1, 0, "module has no docstring")]


# -- REP011 ------------------------------------------------------------------

_BENCH_RECORD_NAMES = {"bench_record", "BenchRecord", "BenchReporter"}
#: A time unit at the start of the literal text that follows an
#: interpolated value in an f-string: `f"{dt:.3f} ms"`, `f"{t}s"`,
#: `f"took {dt} seconds"`.  Anchoring to the post-interpolation position
#: keeps throughput strings ("MB/s") and ordinary plurals out.
_TIME_UNIT_RE = re.compile(r"^\s*(?:[mnu]?s|secs?|seconds?|minutes?)\b")


def _prints_timing(node: ast.Call) -> bool:
    for arg in node.args:
        if not isinstance(arg, ast.JoinedStr):
            continue
        prev_interpolated = False
        for part in arg.values:
            if isinstance(part, ast.FormattedValue):
                prev_interpolated = True
                continue
            if (prev_interpolated and isinstance(part, ast.Constant)
                    and isinstance(part.value, str)
                    and _TIME_UNIT_RE.match(part.value)):
                return True
            prev_interpolated = False
    return False


def _check_rep011(tree: ast.AST, lines: Sequence[str],
                  path: str) -> list[RawFinding]:
    found: list[RawFinding] = []
    if PurePath(path).name.startswith("bench_"):
        uses_record = any(
            (isinstance(n, ast.Name) and n.id in _BENCH_RECORD_NAMES)
            or (isinstance(n, ast.arg) and n.arg == "bench_record")
            for n in ast.walk(tree)
        )
        if not uses_record:
            found.append((
                1, 0,
                "benchmark module never touches bench_record/BenchRecord; "
                "its results are invisible to `repro bench compare`",
            ))
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and _attr_chain(node.func) == "print"
                and _prints_timing(node)):
            found.append((
                node.lineno, node.col_offset,
                "timing printed to stdout instead of recorded as a "
                "BenchRecord metric",
            ))
    return found


# -- REP012 ------------------------------------------------------------------

def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains any ``raise`` statement.

    A nested function definition starts a new scope whose ``raise``
    executes later (if ever), so raises inside one do not count.
    """
    stack: list[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _check_rep012(tree: ast.AST, lines: Sequence[str],
                  path: str) -> list[RawFinding]:
    found: list[RawFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            continue  # bare except is REP004's finding; don't double-report
        names = [node.type] if not isinstance(node.type, ast.Tuple) \
            else list(node.type.elts)
        catches_base = any(_attr_chain(n).split(".")[-1] == "BaseException"
                           for n in names)
        if catches_base and not _handler_reraises(node):
            found.append((
                node.lineno, node.col_offset,
                "except BaseException without re-raise: KeyboardInterrupt/"
                "SystemExit would be folded into a task result",
            ))
    return found


# -- REP018 ------------------------------------------------------------------

def _check_rep018(tree: ast.AST, lines: Sequence[str],
                  path: str) -> list[RawFinding]:
    found: list[RawFinding] = []

    def visit(node: ast.AST, depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if depth <= 1 and not child.name.startswith("_") \
                        and not ast.get_docstring(child):
                    found.append((
                        child.lineno, child.col_offset,
                        f"public function {child.name!r} has no "
                        "docstring",
                    ))
                visit(child, depth + 2)  # nested defs are private
            elif isinstance(child, ast.ClassDef):
                visit(child, depth + 1)  # methods of top-level classes
            else:
                visit(child, depth)

    visit(tree, 0)
    return found


# -- REP019 ------------------------------------------------------------------

#: The repro.obs entry points whose first argument names a span/metric.
_OBS_NAME_FNS = {"span", "counter", "gauge", "histogram", "traced"}
#: Static span/metric names: lowercase dot-namespaced ``subsystem.stage``.
_OBS_NAME_RE = re.compile(r"[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+")


def _check_rep019(tree: ast.AST, lines: Sequence[str],
                  path: str) -> list[RawFinding]:
    found: list[RawFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        parts = _attr_chain(node.func).split(".")
        if parts[-1] not in _OBS_NAME_FNS:
            continue
        if len(parts) > 1 and parts[-2] != "obs":
            continue
        arg = node.args[0]
        dynamic = (
            (isinstance(arg, ast.JoinedStr)
             and any(isinstance(v, ast.FormattedValue)
                     for v in arg.values))
            or isinstance(arg, ast.BinOp)
            or (isinstance(arg, ast.Call)
                and _attr_chain(arg.func).split(".")[-1] == "format")
        )
        if dynamic:
            found.append((
                arg.lineno, arg.col_offset,
                f"{parts[-1]}() name is built dynamically; put variable "
                "parts in labels/meta, not the name",
            ))
        elif isinstance(arg, ast.Constant) and isinstance(arg.value, str) \
                and not _OBS_NAME_RE.fullmatch(arg.value):
            found.append((
                arg.lineno, arg.col_offset,
                f"{parts[-1]}() name {arg.value!r} is not a lowercase "
                "dot-namespaced literal (subsystem.stage)",
            ))
    return found


# -- registry ----------------------------------------------------------------

RULES: tuple[Rule, ...] = (
    Rule(
        id="REP001",
        title="float astype without explicit copy semantics",
        severity="error",
        rationale="Silent float-dtype conversions inside codecs are how "
                  "precision changes sneak past the verification verdict; "
                  "an explicit copy= documents whether the call is an "
                  "identity pass-through or a true conversion (dtype/shape "
                  "framing belongs to base.Compressor).",
        fix_hint="pass copy=False (identity when dtypes already match) or "
                 "copy=True (deliberate conversion) explicitly",
        applies=_in("compressors"),
        check=_check_rep001,
    ),
    Rule(
        id="REP002",
        title="unseeded or global-state RNG",
        severity="error",
        rationale="Ensemble generation and member selection must be "
                  "reproducible; unseeded RNG makes PVT verdicts "
                  "unrepeatable across runs and machines.",
        fix_hint="use np.random.default_rng(seed) with a seed derived from "
                 "repro.config.ReproConfig.base_seed",
        applies=_not_tests,
        check=_check_rep002,
    ),
    Rule(
        id="REP003",
        title="exact float-literal equality in metric code",
        severity="error",
        rationale="The PVT/metric layer compares quantities that went "
                  "through lossy codecs and float reductions; exact "
                  "equality against a literal is a latent always-false "
                  "(or platform-dependent) branch.  Comparisons against "
                  "exactly 0.0 are exempt: the codebase clamps degenerate "
                  "spreads to literal zero as a sentinel.",
        fix_hint="use np.isclose(x, c, atol=...) or an explicit tolerance",
        applies=_in("pvt", "metrics"),
        check=_check_rep003,
    ),
    Rule(
        id="REP004",
        title="bare/swallowed exceptions in worker or harness paths",
        severity="error",
        rationale="A swallowed worker exception turns into a silently "
                  "wrong table or a hung pool; errors must propagate to "
                  "the caller as parallel_map promises.",
        fix_hint="catch the narrowest exception type and re-raise or "
                 "record it explicitly",
        applies=_in("parallel", "harness"),
        check=_check_rep004,
    ),
    Rule(
        id="REP005",
        title="module-level mutable state in compressor modules",
        severity="warning",
        rationale="Codec modules are imported into worker processes; "
                  "mutable module globals fork-copy and then drift "
                  "between workers, making compression results depend on "
                  "call history.",
        fix_hint="make it function-local, pass it explicitly, or rename "
                 "to ALL_CAPS if it is a never-mutated constant table",
        applies=_in("compressors"),
        check=_check_rep005,
    ),
    Rule(
        id="REP006",
        title="unpicklable callable handed to a process pool",
        severity="error",
        rationale="Lambdas and nested functions cannot be pickled; today "
                  "they die deep inside ProcessPoolExecutor with an "
                  "opaque traceback, and only on the parallel path.",
        fix_hint="move the task function to module level (see "
                 "repro.parallel.executor's early TypeError)",
        applies=_not_tests,
        check=_check_rep006,
    ),
    Rule(
        id="REP007",
        title="magic fill/special-value literal",
        severity="error",
        rationale="CESM's 1e35 fill and the 1e34 special-value threshold "
                  "must have exactly one definition; a drifted copy makes "
                  "one code path mask different points than another.",
        fix_hint="import FILL_VALUE / SPECIAL_THRESHOLD from repro.config",
        applies=lambda parts: _not_tests(parts)
        and (not parts or parts[-1] != "config.py"),
        check=_check_rep007,
    ),
    Rule(
        id="REP008",
        title="missing dtype/shape docstring contract",
        severity="warning",
        rationale="Public codec/PVT entry points form the numeric contract "
                  "surface; an undocumented array parameter is where "
                  "float64 ensembles silently meet float32 expectations.",
        fix_hint="add a docstring stating the expected dtype and shape "
                 "((n_members, ...) etc.) of array parameters",
        applies=_in("compressors", "pvt"),
        check=_check_rep008,
    ),
    Rule(
        id="REP009",
        title="ad-hoc timing instead of repro.obs spans",
        severity="error",
        rationale="Hand-rolled time.time()/perf_counter() timing is "
                  "invisible to the observability layer: it cannot nest, "
                  "aggregate, or export, and it keeps running when "
                  "REPRO_TRACE=0 so every caller pays for it.  All timing "
                  "in src/ flows through repro.obs so `repro stats` and "
                  "the trace sinks see one consistent picture.",
        fix_hint="wrap the timed region in `with repro.obs.span(\"sub."
                 "stage\"):` (or @obs.traced) and read durations from the "
                 "aggregator; see docs/observability.md",
        applies=lambda parts: _not_tests(parts) and "obs" not in parts
        and "benchmarks" not in parts,
        check=_check_rep009,
    ),
    Rule(
        id="REP010",
        title="module without a docstring",
        severity="warning",
        rationale="The package map in docs/architecture.md is navigable "
                  "only because every module under src/repro states its "
                  "role; an undocumented module is where the next "
                  "subsystem quietly loses its seam.",
        fix_hint="open the module with a docstring summarizing what it "
                 "owns and which layer calls it",
        applies=_in("repro"),
        check=_check_rep010,
    ),
    Rule(
        id="REP011",
        title="benchmark result bypasses the BenchRecord telemetry",
        severity="error",
        rationale="`repro bench compare` can only gate on results that "
                  "land in BENCH_<name>.json; a benchmark that prints its "
                  "timings (or never takes the bench_record fixture) "
                  "produces numbers the regression gate, the history log, "
                  "and future sessions cannot see.",
        fix_hint="take the bench_record fixture from benchmarks/conftest.py "
                 "and record results via bench_record.run()/bench()/"
                 "metric(); keep prose output in results/ via save_text",
        applies=_in("benchmarks"),
        check=_check_rep011,
    ),
    Rule(
        id="REP012",
        title="swallowed BaseException in the execution subsystem",
        severity="error",
        rationale="The executor's whole failure contract is that every "
                  "misbehaving task becomes a structured TaskFailure — "
                  "built from `except Exception` capture.  A handler that "
                  "catches BaseException and does not re-raise also "
                  "captures KeyboardInterrupt, SystemExit, and the pool's "
                  "own shutdown signals, turning a Ctrl-C into a 'failed "
                  "task' and an unkillable map.",
        fix_hint="catch Exception (WorkerCrashError included) for task "
                 "capture; if BaseException must be intercepted for "
                 "cleanup, end the handler with a bare `raise`",
        applies=_in("parallel", "testing"),
        check=_check_rep012,
    ),
    Rule(
        id="REP018",
        title="undocumented public streaming/serving API",
        severity="warning",
        rationale="The stream and serve packages are the repo's two "
                  "service surfaces — what external callers (the CLI, "
                  "the daemon protocol, other sessions' scripts) program "
                  "against.  An undocumented public function there is an "
                  "API whose chunk ordering, blocking behavior, or "
                  "cleanup obligations exist only in the implementation.",
        fix_hint="add a docstring stating what the function does and any "
                 "ordering/lifecycle obligations (docs/streaming.md, "
                 "docs/serving.md hold the package-level contracts)",
        applies=_in("stream", "serve"),
        check=_check_rep018,
    ),
    Rule(
        id="REP019",
        title="dynamic or non-namespaced span/metric name",
        severity="error",
        rationale="Span and metric names are aggregation keys: the stats "
                  "table, the Prometheus exposition, and the bench-record "
                  "span aggregates all group by them.  An f-string name "
                  "(`f\"job.{kind}\"`) explodes the key space per value "
                  "and splinters every quantile; a flat name loses the "
                  "subsystem prefix the docs and dashboards filter on.",
        fix_hint="use a static lowercase subsystem.stage literal and put "
                 "variable parts in labels (counter(...).add(kind=...)) "
                 "or span metadata",
        applies=lambda parts: _not_tests(parts) and "obs" not in parts
        and "benchmarks" not in parts,
        check=_check_rep019,
    ),
)


def rules_by_id() -> dict[str, Rule]:
    """Mapping from rule ID to rule."""
    return {rule.id: rule for rule in RULES}
