"""Findings baseline: land strict rules without blocking on debatable
positives.

``.repro-lint-baseline.json`` holds a list of *accepted* findings.
Each entry matches on ``(rule, path suffix, symbol)`` — deliberately
not on line numbers, which drift with every edit — and **must** carry
a non-empty ``reason`` string saying why the finding is tolerated;
loading rejects entries without one, so the file cannot silently
become a dumping ground.

CLI wiring (see :mod:`repro.check.__main__`): ``--baseline PATH``
names the file explicitly, otherwise it is discovered by walking up
from the first linted path; ``--no-baseline`` ignores any file;
``--update-baseline`` rewrites the file from the current findings with
a placeholder reason to edit.

Schema::

    {"version": 1,
     "entries": [{"rule": "REP015", "path": "src/repro/store/core.py",
                  "symbol": "repro.store.core.get_store",
                  "reason": "..."}]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path, PurePath
from typing import Iterable, Sequence

from repro.check.engine import Finding

__all__ = [
    "BASELINE_NAME",
    "BaselineEntry",
    "BaselineError",
    "apply_baseline",
    "discover_baseline",
    "load_baseline",
    "write_baseline",
]

BASELINE_NAME = ".repro-lint-baseline.json"
BASELINE_VERSION = 1

#: Reason written by ``--update-baseline``; meant to be hand-edited.
DEFAULT_REASON = ("accepted via --update-baseline; replace with the "
                  "actual justification")


class BaselineError(ValueError):
    """A baseline file that cannot be trusted: bad schema or reasons."""


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: identity plus mandatory justification."""

    rule: str
    path: str
    symbol: str
    reason: str

    def matches(self, finding: Finding) -> bool:
        """Whether ``finding`` is the finding this entry accepts."""
        if self.rule != finding.rule_id:
            return False
        if self.symbol != finding.symbol:
            return False
        entry_parts = PurePath(self.path).parts
        finding_parts = PurePath(finding.path).parts
        n = len(entry_parts)
        return n > 0 and finding_parts[-n:] == entry_parts


def load_baseline(path: str | Path) -> list[BaselineEntry]:
    """Parse and validate a baseline file.

    Raises :class:`BaselineError` on unreadable JSON, an unknown
    schema version, or any entry missing ``rule``/``path``/``reason``
    (an empty ``reason`` counts as missing).
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") \
            from exc
    if not isinstance(payload, dict) or \
            payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path}: expected an object with "
            f"version == {BASELINE_VERSION}")
    raw_entries = payload.get("entries")
    if not isinstance(raw_entries, list):
        raise BaselineError(f"baseline {path}: 'entries' must be a "
                            "list")
    entries: list[BaselineEntry] = []
    for i, raw in enumerate(raw_entries):
        if not isinstance(raw, dict):
            raise BaselineError(
                f"baseline {path}: entry {i} is not an object")
        rule = raw.get("rule", "")
        epath = raw.get("path", "")
        reason = raw.get("reason", "")
        if not (isinstance(rule, str) and rule):
            raise BaselineError(
                f"baseline {path}: entry {i} has no 'rule'")
        if not (isinstance(epath, str) and epath):
            raise BaselineError(
                f"baseline {path}: entry {i} has no 'path'")
        if not (isinstance(reason, str) and reason.strip()):
            raise BaselineError(
                f"baseline {path}: entry {i} ({rule} in {epath}) has "
                "no reason — every baselined finding must say why it "
                "is accepted")
        entries.append(BaselineEntry(
            rule=rule, path=epath,
            symbol=str(raw.get("symbol", "")), reason=reason))
    return entries


def write_baseline(path: str | Path, findings: Sequence[Finding],
                   reason: str = DEFAULT_REASON) -> int:
    """Write ``findings`` as a fresh baseline; returns the entry count.

    Existing entries' reasons are preserved when the same finding is
    re-baselined.
    """
    path = Path(path)
    old: list[BaselineEntry] = []
    if path.is_file():
        try:
            old = load_baseline(path)
        except BaselineError:
            old = []
    entries = []
    seen: set[tuple[str, str, str]] = set()
    for f in findings:
        rel = _repo_relative(f.path, path.parent)
        key = (f.rule_id, rel, f.symbol)
        if key in seen:
            continue
        seen.add(key)
        kept = next((e.reason for e in old
                     if e.rule == f.rule_id and e.symbol == f.symbol
                     and e.path == rel), reason)
        entries.append({"rule": f.rule_id, "path": rel,
                        "symbol": f.symbol, "reason": kept})
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n",
                    encoding="utf-8")
    return len(entries)


def _repo_relative(finding_path: str, root: Path) -> str:
    try:
        return str(Path(finding_path).resolve()
                   .relative_to(root.resolve()))
    except ValueError:
        return finding_path


def discover_baseline(start: str | Path) -> Path | None:
    """Nearest :data:`BASELINE_NAME` at or above ``start``."""
    current = Path(start).resolve()
    if current.is_file():
        current = current.parent
    while True:
        candidate = current / BASELINE_NAME
        if candidate.is_file():
            return candidate
        if current.parent == current:
            return None
        current = current.parent


def apply_baseline(
    findings: Iterable[Finding], entries: Sequence[BaselineEntry],
) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
    """Split findings into ``(kept, suppressed, stale_entries)``.

    ``stale_entries`` are baseline entries that matched nothing — the
    debt was paid and the entry should be deleted.
    """
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    used: set[int] = set()
    for finding in findings:
        hit = None
        for i, entry in enumerate(entries):
            if entry.matches(finding):
                hit = i
                break
        if hit is None:
            kept.append(finding)
        else:
            used.add(hit)
            suppressed.append(finding)
    stale = [e for i, e in enumerate(entries) if i not in used]
    return kept, suppressed, stale
