"""Runtime sanitizer: ``REPRO_SANITIZE=1`` invariant guards.

Three ways to switch the guards on:

- environment: ``REPRO_SANITIZE=1 python -m pytest tests/compressors``;
- context manager: ``with sanitized(): codec.roundtrip(field)``;
- decorator: ``@sanitize_guard`` on any array-in/array-out function.

The guarded boundaries live in the production modules themselves (see
:func:`repro.check.hooks.boundary`): ``Compressor.compress``/``decompress``
verify container-header integrity, dtype/shape preservation, and that no
NaN/Inf appears at points that were valid in the input; the PVT z-score
and E_nmax paths verify their distributions are finite, non-negative, and
member-shaped; ``parallel_map``'s serial path replays the first task to
catch nondeterministic task functions.  Violations raise
:class:`SanitizerError` with the offending codec/function named.
"""

from __future__ import annotations

from contextlib import contextmanager
from functools import wraps
from typing import Any, Callable, Iterator

import numpy as np

from repro.check.hooks import SanitizerError, active, get_override, \
    set_override

__all__ = ["SanitizerError", "sanitize_active", "sanitized", "sanitize_guard"]


def sanitize_active() -> bool:
    """Whether sanitizer guards currently run (env var or context)."""
    return active()


@contextmanager
def sanitized(enabled: bool = True) -> Iterator[None]:
    """Force the sanitizer on (or off) for the duration of the block.

    Nests correctly: the previous state — an outer ``sanitized`` block's
    override, or ``None`` meaning the ``REPRO_SANITIZE`` environment
    default — is restored on exit, so leaving the outermost block hands
    control back to the environment rather than pinning a stale value.
    """
    previous = get_override()
    set_override(bool(enabled))
    try:
        yield
    finally:
        set_override(previous)


def sanitize_guard(fn: Callable | None = None, *,
                   name: str | None = None) -> Callable:
    """Decorator: guard an array-transforming function's numeric contract.

    When the sanitizer is active and both the first positional argument
    and the return value are ``np.ndarray``, checks that the function
    preserved dtype and shape and introduced no NaN/Inf at positions that
    were finite on the way in.  Use on helper transforms that sit between
    the codecs and the PVT metrics, e.g.::

        @sanitize_guard
        def detrend(field: np.ndarray) -> np.ndarray: ...

    Functions with other signatures pass through unchecked rather than
    erroring, so the decorator is safe on mixed-type utilities.
    """

    def decorate(func: Callable) -> Callable:
        label = name or getattr(func, "__qualname__", repr(func))

        @wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            result = func(*args, **kwargs)
            if not active() or not args:
                return result
            source, out = args[0], result
            if not (isinstance(source, np.ndarray)
                    and isinstance(out, np.ndarray)):
                return result
            if out.dtype != source.dtype:
                raise SanitizerError(
                    "dtype-preserved", label,
                    "function changed the array dtype",
                    input_dtype=str(source.dtype),
                    output_dtype=str(out.dtype),
                )
            if out.shape != source.shape:
                raise SanitizerError(
                    "shape-preserved", label,
                    "function changed the array shape",
                    input_shape=tuple(source.shape),
                    output_shape=tuple(out.shape),
                )
            bad = np.isfinite(source) & ~np.isfinite(out)
            if bad.any():
                where = np.flatnonzero(bad.reshape(-1))
                raise SanitizerError(
                    "no-new-nonfinite", label,
                    "function introduced NaN/Inf at finite input points",
                    n_bad=int(where.size), first_index=int(where[0]),
                )
            return result

        return wrapper

    if fn is not None:
        return decorate(fn)
    return decorate
