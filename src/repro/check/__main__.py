"""``python -m repro.check`` — the static analyzer's CLI.

Commands:

- ``lint <paths...>`` — lint files/trees; exit 0 iff no findings.
  ``--format=json`` for machine-readable output, ``--select`` to
  restrict to specific rule IDs.  ``--deep`` additionally links the
  whole program and runs the REP013..REP017 flow rules; selecting a
  flow rule implies ``--deep``.  With ``--deep``, findings accepted by
  a baseline file (``.repro-lint-baseline.json``, discovered upward
  from the first path or named via ``--baseline``) are suppressed;
  ``--update-baseline`` rewrites that file from the current findings
  and ``--no-baseline`` ignores it.
- ``graph <paths...>`` — dump the whole-program call graph with its
  worker/cache entry points as Graphviz DOT (default) or JSON.
- ``rules`` — print the rule table, errors first; ``--format=json``
  for a machine-readable table.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from pathlib import Path

from repro.check import baseline as baseline_mod
from repro.check import flow
from repro.check.engine import Finding, lint_paths, render_json, \
    render_text
from repro.check.flow.rules import FLOW_RULES, FlowRule, \
    flow_rules_by_id
from repro.check.rules import RULES, Rule, rules_by_id

RuleLike = Rule | FlowRule


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro.check``."""
    parser = argparse.ArgumentParser(
        prog="repro.check",
        description="Numeric-safety static analyzer for the "
                    "compression/PVT pipeline.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("lint", help="lint Python files or trees")
    p.add_argument("paths", nargs="+", help="files or directories to lint")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--select", default=None,
                   help="comma-separated rule IDs to run (default: all)")
    p.add_argument("--deep", action="store_true",
                   help="also run the whole-program flow rules "
                        "(REP013..REP017)")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="baseline file of accepted findings (default: "
                        "discovered .repro-lint-baseline.json)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any baseline file")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from the current "
                        "findings and exit 0")

    p = sub.add_parser(
        "graph",
        help="dump the whole-program call graph (DOT or JSON)")
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to analyze (default: src)")
    p.add_argument("--format", choices=["dot", "json"], default="dot")

    p = sub.add_parser("rules", help="list the REP rule set")
    p.add_argument("--format", choices=["text", "json"], default="text")
    return parser


def _all_rules() -> list[RuleLike]:
    """Every rule, errors before warnings, by ID within severity."""
    merged: list[RuleLike] = [*RULES, *FLOW_RULES]
    merged.sort(key=lambda r: (r.severity != "error", r.id))
    return merged


def _rules_text() -> str:
    deep_ids = flow_rules_by_id().keys()
    out = []
    for rule in _all_rules():
        deep = " (deep)" if rule.id in deep_ids else ""
        out.append(f"{rule.id} [{rule.severity}]{deep} {rule.title}")
        out.append(f"    why: {rule.rationale}")
        out.append(f"    fix: {rule.fix_hint}")
    return "\n".join(out)


def _rules_json() -> str:
    deep_ids = flow_rules_by_id().keys()
    entries = [
        {"id": r.id, "severity": r.severity, "title": r.title,
         "rationale": r.rationale, "fix_hint": r.fix_hint,
         "deep": r.id in deep_ids}
        for r in _all_rules()
    ]
    return json.dumps({"rules": entries, "count": len(entries)},
                      indent=2)


def _known_rule_ids() -> dict[str, RuleLike]:
    known: dict[str, RuleLike] = dict(rules_by_id())
    known.update(flow_rules_by_id())
    return known


def _resolve_baseline(args: argparse.Namespace) \
        -> tuple[list[baseline_mod.BaselineEntry], Path | None]:
    if args.no_baseline:
        return [], None
    if args.baseline:
        path = Path(args.baseline)
        return baseline_mod.load_baseline(path), path
    found = baseline_mod.discover_baseline(Path(args.paths[0]))
    if found is None:
        return [], None
    return baseline_mod.load_baseline(found), found


def _lint_command(args: argparse.Namespace) -> int:
    select = None
    if args.select:
        select = [s.strip().upper() for s in args.select.split(",")
                  if s.strip()]
        known = _known_rule_ids()
        unknown = sorted(set(select) - known.keys())
        if unknown:
            # A typo'd --select silently passing everything would defeat
            # the gate; reject it like argparse rejects a bad choice.
            print(f"repro.check: unknown rule id(s): "
                  f"{', '.join(unknown)} "
                  f"(known: {', '.join(known)})", file=sys.stderr)
            return 2
        if any(s in flow_rules_by_id() for s in select):
            args.deep = True
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"repro.check: no such file or directory: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 2

    findings: list[Finding] = lint_paths(args.paths, select=select)
    if args.deep:
        findings = sorted(
            findings + flow.deep_lint(args.paths, select=select),
            key=lambda f: (f.path, f.line, f.col, f.rule_id),
        )

    use_baseline = args.deep or args.baseline or args.update_baseline
    if use_baseline:
        if args.update_baseline:
            target = Path(args.baseline) if args.baseline else (
                baseline_mod.discover_baseline(Path(args.paths[0]))
                or Path(baseline_mod.BASELINE_NAME))
            n = baseline_mod.write_baseline(target, findings)
            print(f"repro.check: wrote {n} entr"
                  f"{'y' if n == 1 else 'ies'} to {target}")
            return 0
        try:
            entries, source = _resolve_baseline(args)
        except baseline_mod.BaselineError as exc:
            print(f"repro.check: {exc}", file=sys.stderr)
            return 2
        findings, suppressed, stale = baseline_mod.apply_baseline(
            findings, entries)
        if suppressed:
            print(f"repro.check: {len(suppressed)} finding(s) "
                  f"suppressed by baseline {source}", file=sys.stderr)
        for entry in stale:
            print(f"repro.check: stale baseline entry ({entry.rule} "
                  f"{entry.symbol or entry.path}) matched nothing — "
                  "delete it", file=sys.stderr)

    print(render_json(findings) if args.format == "json"
          else render_text(findings))
    return 1 if findings else 0


def _graph_command(args: argparse.Namespace) -> int:
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"repro.check: no such file or directory: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 2
    program = flow.build_program(args.paths)
    if args.format == "json":
        print(json.dumps(flow.graph_json(program), indent=2))
    else:
        print(flow.graph_dot(program))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "rules":
        print(_rules_json() if args.format == "json"
              else _rules_text())
        return 0
    if args.command == "graph":
        return _graph_command(args)
    return _lint_command(args)


if __name__ == "__main__":
    sys.exit(main())
