"""``python -m repro.check`` — the static analyzer's CLI.

Commands:

- ``lint <paths...>`` — lint files/trees; exit 0 iff no findings.
  ``--format=json`` for machine-readable output, ``--select`` to restrict
  to specific rule IDs.
- ``rules`` — print the rule table (ID, severity, title, rationale, fix).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from pathlib import Path

from repro.check.engine import lint_paths, render_json, render_text
from repro.check.rules import RULES, rules_by_id


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro.check``."""
    parser = argparse.ArgumentParser(
        prog="repro.check",
        description="Numeric-safety static analyzer for the "
                    "compression/PVT pipeline.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("lint", help="lint Python files or trees")
    p.add_argument("paths", nargs="+", help="files or directories to lint")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--select", default=None,
                   help="comma-separated rule IDs to run (default: all)")

    p = sub.add_parser("rules", help="list the REP rule set")
    p.add_argument("--format", choices=["text", "json"], default="text")
    return parser


def _rules_text() -> str:
    out = []
    for rule in RULES:
        out.append(f"{rule.id} [{rule.severity}] {rule.title}")
        out.append(f"    why: {rule.rationale}")
        out.append(f"    fix: {rule.fix_hint}")
    return "\n".join(out)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "rules":
        if args.format == "json":
            print(json.dumps([
                {"id": r.id, "severity": r.severity, "title": r.title,
                 "rationale": r.rationale, "fix_hint": r.fix_hint}
                for r in RULES
            ], indent=2))
        else:
            print(_rules_text())
        return 0

    select = None
    if args.select:
        select = [s.strip().upper() for s in args.select.split(",")
                  if s.strip()]
        unknown = sorted(set(select) - rules_by_id().keys())
        if unknown:
            # A typo'd --select silently passing everything would defeat
            # the gate; reject it like argparse rejects a bad choice.
            print(f"repro.check: unknown rule id(s): {', '.join(unknown)} "
                  f"(known: {', '.join(rules_by_id())})", file=sys.stderr)
            return 2
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"repro.check: no such file or directory: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 2
    findings = lint_paths(args.paths, select=select)
    print(render_json(findings) if args.format == "json"
          else render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
