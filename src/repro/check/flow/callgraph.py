"""Call graph, capture analysis, and worker/cache binding fixpoint.

Builds a :class:`FunctionInfo` for every function, method, lambda, and
module body in the program, then resolves name chains through the
symbol tables of :mod:`repro.check.flow.modules` to produce call edges.

On top of the graph, :meth:`Program.bindings` runs the capture/escape
fixpoint that answers the question the flow rules need: *which
callables can execute inside a worker process, and which compute a
value that lands in the artifact store?*  Seeds are the concurrency and
caching entry points —

- ``parallel_map(fn, ...)`` / ``Executor(...).map(fn, ...)`` /
  ``ex.submit(fn, ...)`` bind ``fn`` as **worker**;
- ``cached(key, compute)`` binds ``compute`` as **cache**;
- ``@memoized_stage(...)`` binds the decorated function as **cache** —

matched by (import-resolved) name tail so self-contained fixture
packages exercise the same machinery as the real tree.  Bindings
propagate transitively along resolved call edges, through
``functools.partial``, and through *parameter forwarding*: when a bound
function calls one of its own parameters, every call site of that
function binds the argument it passes there (this is how
``_cached_table(stage, ctx, build)``-style indirection resolves).  The
walk stops at trusted modules (``repro.obs``, ``repro.config``, ...).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.check.flow.modules import (
    ModuleInfo,
    Symbol,
    chain_of,
    discover_modules,
    is_trusted,
    iter_own_nodes,
    resolve_chain_text,
)

__all__ = [
    "BindOrigin",
    "Bindings",
    "CallSite",
    "EntryPoint",
    "FunctionInfo",
    "Program",
    "Use",
    "build_program",
]

#: Method tails that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "extend", "add", "update", "clear", "pop", "popitem",
    "insert", "remove", "discard", "setdefault", "move_to_end",
    "appendleft", "extendleft",
})

_WORKER_TAILS = frozenset({"parallel_map"})
_EXECUTOR_METHODS = frozenset({"map", "submit"})
_MAX_VIA = 8


@dataclass(frozen=True)
class Use:
    """One read (or in-place mutation) of a dotted name chain."""

    chain: tuple[str, ...]
    line: int
    col: int
    mutation: bool = False


@dataclass
class CallSite:
    """One call expression inside a function's own scope."""

    chain: str  # dotted text of the callee ("" when not a name chain)
    node: ast.Call
    line: int
    col: int


@dataclass
class FunctionInfo:
    """One scope in the program: function, method, lambda, or module."""

    qualname: str
    module: ModuleInfo
    node: ast.AST
    name: str
    lineno: int
    parent: str | None = None  # enclosing function's qualname
    class_qual: str = ""  # owning class qualname for methods
    params: tuple[str, ...] = ()
    locals: frozenset[str] = frozenset()
    local_imports: dict[str, str] = field(default_factory=dict)
    local_defs: dict[str, str] = field(default_factory=dict)
    instance_types: dict[str, str] = field(default_factory=dict)
    calls: list[CallSite] = field(default_factory=list)
    uses: list[Use] = field(default_factory=list)
    decorators: tuple[str, ...] = ()
    raises_skipstore: bool = False
    is_synthetic: bool = False  # the <module> pseudo-function

    @property
    def display(self) -> str:
        """Qualname without the top-level package prefix."""
        return self.qualname.split(".", 1)[-1]


@dataclass(frozen=True)
class BindOrigin:
    """Why a function is worker- or cache-bound."""

    kind: str  # "worker" | "cache"
    entry: str  # e.g. "parallel_map() at src/.../tables.py:238"
    via: tuple[str, ...] = ()

    def describe(self) -> str:
        """Human-readable provenance for finding messages."""
        role = "worker task" if self.kind == "worker" \
            else "cache compute"
        text = f"{role} of {self.entry}"
        if self.via:
            shown = self.via[:4]
            hop = " -> ".join(q.split(".")[-1] for q in shown)
            if len(self.via) > 4:
                hop += " -> ..."
            text += f", via {hop}"
        return text

    def extend(self, qualname: str) -> "BindOrigin":
        """Origin for a callee reached from this bound function."""
        if len(self.via) >= _MAX_VIA:
            return self
        return BindOrigin(self.kind, self.entry, self.via + (qualname,))


@dataclass(frozen=True)
class EntryPoint:
    """A resolved concurrency/caching entry point (for ``graph``)."""

    kind: str  # "worker" | "cache"
    entry: str  # "<tail>() at path:line" or "@memoized_stage at ..."
    target: str  # bound function's qualname


@dataclass
class Bindings:
    """Result of the capture fixpoint."""

    bound: dict[str, dict[str, BindOrigin]]
    sink_params: dict[tuple[str, str], dict[str, BindOrigin]]
    entries: list[EntryPoint]

    def functions_bound(self, kind: str) -> list[str]:
        """Qualnames bound with ``kind``, sorted."""
        return sorted(q for q, kinds in self.bound.items()
                      if kind in kinds)


# -- scope collection --------------------------------------------------------


def _nested_scopes(root: ast.AST) -> Iterator[ast.AST]:
    """Directly nested function/lambda/class nodes of ``root``'s scope."""
    if isinstance(root, ast.Lambda):
        stack: list[ast.AST] = [root.body]
    elif isinstance(root, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.Module)):
        stack = list(root.body)
    else:
        stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            yield node
            continue
        stack.extend(ast.iter_child_nodes(node))


def _param_names(node: ast.AST) -> tuple[str, ...]:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
        return ()
    a = node.args
    names = [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
    if a.vararg is not None:
        names.append(a.vararg.arg)
    if a.kwarg is not None:
        names.append(a.kwarg.arg)
    return tuple(names)


def _decorator_chains(node: ast.AST,
                      imports: dict[str, str]) -> tuple[str, ...]:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return ()
    chains = []
    for dec in node.decorator_list:
        expr = dec.func if isinstance(dec, ast.Call) else dec
        chains.append(resolve_chain_text(chain_of(expr), imports))
    return tuple(chains)


def _target_names(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)
    else:
        yield target


def _scan_scope(fi: FunctionInfo) -> None:
    """Populate locals, uses, calls, and flags from ``fi``'s own body."""
    own = list(iter_own_nodes(fi.node))

    globals_decl: set[str] = set()
    assigned: set[str] = set()
    for node in own:
        if isinstance(node, ast.Global):
            globals_decl.update(node.names)
        elif isinstance(node, ast.Nonlocal):
            globals_decl.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                               ast.NamedExpr)):
            targets: Iterable[ast.expr]
            if isinstance(node, ast.Assign):
                targets = node.targets
            else:
                targets = [node.target]
            for t in targets:
                for leaf in _target_names(t):
                    if isinstance(leaf, ast.Name):
                        assigned.add(leaf.id)
        elif isinstance(node, ast.For):
            for leaf in _target_names(node.target):
                if isinstance(leaf, ast.Name):
                    assigned.add(leaf.id)
        elif isinstance(node, ast.withitem):
            if node.optional_vars is not None:
                for leaf in _target_names(node.optional_vars):
                    if isinstance(leaf, ast.Name):
                        assigned.add(leaf.id)
        elif isinstance(node, ast.ExceptHandler):
            if node.name:
                assigned.add(node.name)
        elif isinstance(node, ast.comprehension):
            for leaf in _target_names(node.target):
                if isinstance(leaf, ast.Name):
                    assigned.add(leaf.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                fi.local_imports[local] = target
                assigned.add(local)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:  # relative: resolve against the module
                anchor_parts = fi.module.name.split(".")
                drop = node.level - (1 if fi.module.is_package else 0)
                if drop < len(anchor_parts):
                    anchor = ".".join(
                        anchor_parts[: len(anchor_parts) - drop]
                        if drop else anchor_parts)
                    base = f"{anchor}.{node.module}" if node.module \
                        else anchor
                else:
                    base = ""
            if base:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    fi.local_imports[local] = f"{base}.{alias.name}"
                    assigned.add(local)

    fi.locals = frozenset(
        (set(fi.params) | assigned | set(fi.local_defs)) - globals_decl
    )

    imports = dict(fi.module.imports)
    imports.update(fi.local_imports)

    def add_use(chain: str, node: ast.AST, mutation: bool) -> None:
        if chain:
            fi.uses.append(Use(
                chain=tuple(chain.split(".")), line=node.lineno,
                col=node.col_offset, mutation=mutation,
            ))

    for node in own:
        if isinstance(node, ast.Call):
            chain = chain_of(node.func)
            fi.calls.append(CallSite(
                chain=chain, node=node, line=node.lineno,
                col=node.col_offset,
            ))
            if chain and "." in chain:
                tail = chain.rsplit(".", 1)[-1]
                add_use(chain, node, tail in MUTATOR_METHODS)
            elif chain:
                add_use(chain, node, False)
        elif isinstance(node, ast.Name) and \
                isinstance(node.ctx, ast.Load):
            add_use(node.id, node, False)
        elif isinstance(node, ast.Attribute) and \
                isinstance(node.ctx, ast.Load):
            add_use(chain_of(node), node, False)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for t in targets:
                for leaf in _target_names(t):
                    if isinstance(leaf, (ast.Subscript, ast.Attribute)):
                        add_use(chain_of(
                            leaf.value if isinstance(leaf, ast.Subscript)
                            else leaf.value), leaf, True)
                    elif isinstance(leaf, ast.Name) and \
                            leaf.id in globals_decl:
                        add_use(leaf.id, leaf, True)
                    elif isinstance(leaf, ast.Name) and \
                            isinstance(node, ast.AugAssign) and \
                            leaf.id not in fi.locals:
                        add_use(leaf.id, leaf, True)
            if isinstance(node, ast.Assign) and \
                    len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name) and \
                    isinstance(node.value, ast.Call):
                ctor = resolve_chain_text(
                    chain_of(node.value.func), imports)
                if ctor:
                    fi.instance_types[node.targets[0].id] = ctor
        elif isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            name = chain_of(exc.func) if isinstance(exc, ast.Call) \
                else chain_of(exc)
            if name.rsplit(".", 1)[-1] == "SkipStore":
                fi.raises_skipstore = True


def _collect_module(module: ModuleInfo,
                    functions: dict[str, FunctionInfo],
                    node_map: dict[int, FunctionInfo]) -> None:
    def build_scope(fi: FunctionInfo, qual_prefix: str) -> None:
        """Scan ``fi``'s body and build its directly nested scopes."""
        functions[fi.qualname] = fi
        node_map[id(fi.node)] = fi
        nested = list(_nested_scopes(fi.node))
        for sub in nested:
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fi.local_defs[sub.name] = f"{qual_prefix}.{sub.name}"
        _scan_scope(fi)
        if fi.is_synthetic:
            # Module scope: every name falls through to the symbol
            # table, so module-level registrations and entry calls
            # resolve like they would in a function.
            fi.locals = frozenset()
        parent = None if fi.is_synthetic else fi.qualname
        for sub in nested:
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                build_scope(_make(sub, f"{qual_prefix}.{sub.name}",
                                  sub.name, parent, ""),
                            f"{qual_prefix}.{sub.name}")
            elif isinstance(sub, ast.Lambda):
                lam = f"{qual_prefix}.<lambda:{sub.lineno}>"
                build_scope(_make(sub, lam, "<lambda>", parent, ""),
                            lam)
            elif isinstance(sub, ast.ClassDef):
                cls_qual = f"{qual_prefix}.{sub.name}"
                for item in _nested_scopes(sub):
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        build_scope(
                            _make(item, f"{cls_qual}.{item.name}",
                                  item.name, parent, cls_qual),
                            f"{cls_qual}.{item.name}")
                    elif isinstance(item, ast.Lambda):
                        lam = f"{cls_qual}.<lambda:{item.lineno}>"
                        build_scope(_make(item, lam, "<lambda>",
                                          parent, ""), lam)

    def _make(node: ast.AST, qualname: str, name: str,
              parent: str | None, class_qual: str,
              synthetic: bool = False) -> FunctionInfo:
        return FunctionInfo(
            qualname=qualname, module=module, node=node, name=name,
            lineno=getattr(node, "lineno", 1), parent=parent,
            class_qual=class_qual, params=_param_names(node),
            decorators=_decorator_chains(node, module.imports),
            is_synthetic=synthetic,
        )

    mod_fi = _make(module.tree, f"{module.name}.<module>", "<module>",
                   None, "", synthetic=True)
    build_scope(mod_fi, module.name)


# -- the program -------------------------------------------------------------


class Program:
    """The whole-program view: modules, functions, resolution, bindings."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self.functions: dict[str, FunctionInfo] = {}
        self.node_map: dict[int, FunctionInfo] = {}
        for module in modules.values():
            _collect_module(module, self.functions, self.node_map)
        self._mark_mutations()
        self._bindings: Bindings | None = None

    # -- resolution ------------------------------------------------------

    def resolve_dotted(
        self, dotted: str, rest: tuple[str, ...] = (),
    ) -> tuple[ModuleInfo, Symbol, tuple[str, ...]] | None:
        """Chase a dotted name through modules and re-exports."""
        parts = tuple(dotted.split(".")) + tuple(rest)
        for _ in range(12):
            module = None
            idx = 0
            for i in range(len(parts), 0, -1):
                name = ".".join(parts[:i])
                if name in self.modules:
                    module = self.modules[name]
                    idx = i
                    break
            if module is None or idx == len(parts):
                return None
            sym = module.symbols.get(parts[idx])
            if sym is None:
                return None
            if sym.kind == "import":
                parts = tuple(sym.target.split(".")) + parts[idx + 1:]
                continue
            return module, sym, parts[idx + 1:]
        return None

    def _function_for(
        self, module: ModuleInfo, sym: Symbol, rest: tuple[str, ...],
    ) -> FunctionInfo | None:
        if sym.kind == "def" and not rest:
            return self.functions.get(f"{module.name}.{sym.name}")
        if sym.kind == "class" and len(rest) == 1:
            return self.functions.get(
                f"{module.name}.{sym.name}.{rest[0]}")
        return None

    def resolve_callable(
        self, fi: FunctionInfo, chain: str,
    ) -> FunctionInfo | tuple[str, str] | None:
        """Resolve a callee chain from inside ``fi``.

        Returns the target :class:`FunctionInfo`, a ``(owner_qualname,
        param_name)`` pair when the chain names a parameter of ``fi``
        or an enclosing function, or ``None``.
        """
        if not chain:
            return None
        parts = chain.split(".")
        root = parts[0]
        # self.method() inside a method
        if fi.class_qual and fi.params and root == fi.params[0] \
                and len(parts) == 2:
            return self.functions.get(f"{fi.class_qual}.{parts[1]}")
        # local instance: ex = Executor(...); ex.map(...)
        if len(parts) == 2 and root in fi.instance_types:
            ctor = fi.instance_types[root]
            resolved = self.resolve_dotted(ctor)
            if resolved is not None:
                mod, sym, rest = resolved
                if sym.kind == "class" and not rest:
                    return self.functions.get(
                        f"{mod.name}.{sym.name}.{parts[1]}")
            return None
        scope: FunctionInfo | None = fi
        while scope is not None:
            if root in scope.local_imports:
                resolved = self.resolve_dotted(
                    scope.local_imports[root], tuple(parts[1:]))
                if resolved is None:
                    return None
                return self._function_for(*resolved)
            if root in scope.local_defs and len(parts) == 1:
                return self.functions.get(scope.local_defs[root])
            if root in scope.params:
                return (scope.qualname, root) if len(parts) == 1 \
                    else None
            if root in scope.locals:
                return None
            scope = self.functions.get(scope.parent) \
                if scope.parent else None
        sym = fi.module.symbols.get(root)
        if sym is None:
            return None
        if sym.kind == "import":
            resolved = self.resolve_dotted(sym.target, tuple(parts[1:]))
            if resolved is None:
                return None
            return self._function_for(*resolved)
        return self._function_for(fi.module, sym, tuple(parts[1:]))

    def resolve_use(
        self, fi: FunctionInfo, use: Use,
    ) -> tuple[ModuleInfo, Symbol] | None:
        """Module-level symbol a data use refers to, if any."""
        root = use.chain[0]
        scope: FunctionInfo | None = fi
        while scope is not None:
            if root in scope.local_imports:
                resolved = self.resolve_dotted(
                    scope.local_imports[root], tuple(use.chain[1:]))
                return (resolved[0], resolved[1]) if resolved else None
            if root in scope.locals or root in scope.params:
                return None
            scope = self.functions.get(scope.parent) \
                if scope.parent else None
        sym = fi.module.symbols.get(root)
        if sym is None:
            return None
        if sym.kind == "import":
            resolved = self.resolve_dotted(
                sym.target, tuple(use.chain[1:]))
            return (resolved[0], resolved[1]) if resolved else None
        return fi.module, sym

    def _mark_mutations(self) -> None:
        for fi in self.functions.values():
            for use in fi.uses:
                if not use.mutation:
                    continue
                resolved = self.resolve_use(fi, use)
                if resolved is not None:
                    resolved[1].mutated = True

    # -- binding fixpoint ------------------------------------------------

    def bindings(self) -> Bindings:
        """Worker/cache binding sets (computed once, then cached)."""
        if self._bindings is not None:
            return self._bindings
        state = Bindings(bound={}, sink_params={}, entries=[])
        changed = True
        while changed:
            changed = False
            changed |= self._seed_decorators(state)
            changed |= self._seed_call_sites(state)
            changed |= self._propagate(state)
        self._bindings = state
        return state

    def _bind(self, state: Bindings, fi: FunctionInfo | None,
              kind: str, origin: BindOrigin) -> bool:
        if fi is None or fi.is_synthetic or is_trusted(fi.module):
            return False
        kinds = state.bound.setdefault(fi.qualname, {})
        if kind in kinds:
            return False
        kinds[kind] = origin
        return True

    def _bind_expr(self, state: Bindings, fi: FunctionInfo,
                   expr: ast.AST | None, kind: str,
                   origin: BindOrigin) -> tuple[bool, str]:
        """Bind the callable an argument expression denotes.

        Returns ``(changed, target_qualname)``.
        """
        if expr is None:
            return False, ""
        if isinstance(expr, ast.Lambda):
            target = self.node_map.get(id(expr))
            if target is None:
                return False, ""
            return self._bind(state, target, kind, origin), \
                target.qualname
        if isinstance(expr, ast.Call):
            tail = chain_of(expr.func).rsplit(".", 1)[-1]
            if tail == "partial" and expr.args:
                return self._bind_expr(
                    state, fi, expr.args[0], kind, origin)
            return False, ""
        chain = chain_of(expr)
        if not chain:
            return False, ""
        resolved = self.resolve_callable(fi, chain)
        if isinstance(resolved, FunctionInfo):
            return self._bind(state, resolved, kind, origin), \
                resolved.qualname
        if isinstance(resolved, tuple):
            owner, param = resolved
            kinds = state.sink_params.setdefault((owner, param), {})
            if kind not in kinds:
                kinds[kind] = origin
                return True, ""
        return False, ""

    def _entry_desc(self, tail: str, fi: FunctionInfo,
                    cs: CallSite) -> str:
        return f"{tail}() at {fi.module.path}:{cs.line}"

    def _intrinsic_specs(
        self, fi: FunctionInfo, cs: CallSite,
    ) -> list[tuple[int, str | None, str, str]]:
        """``(arg_index, kwarg_name, kind, entry_desc)`` sink specs."""
        specs: list[tuple[int, str | None, str, str]] = []
        tail = cs.chain.rsplit(".", 1)[-1] if cs.chain else ""
        if tail in _WORKER_TAILS:
            specs.append((0, "fn", "worker",
                          self._entry_desc(tail, fi, cs)))
        elif tail == "cached":
            specs.append((1, "compute", "cache",
                          self._entry_desc(tail, fi, cs)))
        elif isinstance(cs.node.func, ast.Attribute) and \
                cs.node.func.attr in _EXECUTOR_METHODS:
            if self._executor_receiver(fi, cs.node.func.value):
                specs.append((0, None, "worker",
                              self._entry_desc(
                                  f"Executor.{cs.node.func.attr}",
                                  fi, cs)))
        return specs

    def _executor_receiver(self, fi: FunctionInfo,
                           value: ast.AST) -> bool:
        if isinstance(value, ast.Call):
            ctor = chain_of(value.func)
            return ctor.rsplit(".", 1)[-1] == "Executor"
        chain = chain_of(value)
        if chain and "." not in chain:
            ctor = fi.instance_types.get(chain, "")
            return ctor.rsplit(".", 1)[-1] == "Executor"
        return False

    def _seed_decorators(self, state: Bindings) -> bool:
        changed = False
        for fi in self.functions.values():
            if is_trusted(fi.module):
                continue
            for dec in fi.decorators:
                if dec.rsplit(".", 1)[-1] == "memoized_stage":
                    entry = (f"@memoized_stage at "
                             f"{fi.module.path}:{fi.lineno}")
                    origin = BindOrigin("cache", entry)
                    if self._bind(state, fi, "cache", origin):
                        state.entries.append(EntryPoint(
                            "cache", entry, fi.qualname))
                        changed = True
        return changed

    def _seed_call_sites(self, state: Bindings) -> bool:
        changed = False
        for fi in self.functions.values():
            if is_trusted(fi.module):
                continue
            for cs in fi.calls:
                specs = list(self._intrinsic_specs(fi, cs))
                is_entry = [True] * len(specs)
                target = self.resolve_callable(fi, cs.chain) \
                    if cs.chain else None
                if isinstance(target, FunctionInfo):
                    for pos, pname in enumerate(target.params):
                        kinds = state.sink_params.get(
                            (target.qualname, pname))
                        if kinds:
                            for kind, origin in kinds.items():
                                specs.append(
                                    (pos, pname, kind, origin.entry))
                                is_entry.append(False)
                for (idx, kwname, kind, entry), seed in \
                        zip(specs, is_entry):
                    expr = _call_arg(cs.node, idx, kwname)
                    origin = BindOrigin(kind, entry)
                    did, qual = self._bind_expr(
                        state, fi, expr, kind, origin)
                    if did:
                        changed = True
                        if seed and qual:
                            state.entries.append(
                                EntryPoint(kind, entry, qual))
        return changed

    def _propagate(self, state: Bindings) -> bool:
        changed = False
        for qual in list(state.bound):
            fi = self.functions.get(qual)
            if fi is None:
                continue
            kinds = dict(state.bound[qual])
            for cs in fi.calls:
                if not cs.chain:
                    continue
                target = self.resolve_callable(fi, cs.chain)
                if isinstance(target, FunctionInfo):
                    if target.is_synthetic or is_trusted(target.module):
                        continue
                    for kind, origin in kinds.items():
                        if self._bind(state, target, kind,
                                      origin.extend(fi.qualname)):
                            changed = True
                elif isinstance(target, tuple):
                    owner, param = target
                    sink = state.sink_params.setdefault(
                        (owner, param), {})
                    for kind, origin in kinds.items():
                        if kind not in sink:
                            sink[kind] = origin.extend(fi.qualname)
                            changed = True
        return changed


def _call_arg(call: ast.Call, index: int,
              kwname: str | None) -> ast.AST | None:
    """Positional-or-keyword argument of a call, ``None`` if absent."""
    positional = [a for a in call.args
                  if not isinstance(a, ast.Starred)]
    if len(positional) == len(call.args) and len(positional) > index:
        return positional[index]
    if kwname is not None:
        for kw in call.keywords:
            if kw.arg == kwname:
                return kw.value
    return None


def build_program(paths: Iterable[str]) -> Program:
    """Discover, parse, and link every module under ``paths``."""
    return Program(discover_modules(paths))
