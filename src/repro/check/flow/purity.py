"""Purity and determinism scanning for bound callables.

Given a :class:`~repro.check.flow.callgraph.FunctionInfo`, these
scanners look only at the function's *own* scope (nested scopes are
bound and scanned separately if reachable) and report:

- :func:`scan_sources` — nondeterministic *sources* whose value could
  flow into a store key or a cached/retried result: wall clocks,
  global-state or unseeded RNG, ``os.environ`` reads outside
  ``repro.config``, entropy APIs (``uuid4``, ``os.urandom``,
  ``secrets``), and iteration over sets (the one builtin whose order
  is hash-randomized across processes);
- :func:`scan_effects` — observable *side effects* that are not
  idempotent under re-execution: append-mode ``open``, destructive
  filesystem calls (``os.remove``, ``shutil.rmtree``, ``os.rename``),
  and bare ``Path.unlink()`` without ``missing_ok=True``.
  ``os.replace`` and whole-file ``write_text``/``write_bytes`` are
  exempt: re-running them converges to the same state.

Name chains are resolved through the module's (and the function's own)
import maps, so ``from os import environ; environ.get(...)`` is still
an env read.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.check.flow.callgraph import FunctionInfo
from repro.check.flow.modules import chain_of, iter_own_nodes, \
    resolve_chain_text
from repro.check.rules import _CLOCK_NAMES, _RNG_FACTORIES

__all__ = ["EffectHit", "SourceHit", "scan_effects", "scan_sources"]

#: ``random`` module functions that consult hidden global state.
_RANDOM_GLOBAL_FUNCS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "lognormvariate", "getrandbits",
})

_ENV_CALLS = frozenset({
    "os.environ.get", "os.getenv", "os.environ.setdefault",
    "os.environ.pop", "os.environ.copy", "os.environ.items",
    "os.environ.keys",
})

_DATETIME_NOW = frozenset({"now", "utcnow", "today"})

_DESTRUCTIVE_CALLS = {
    "os.remove": "os.remove()",
    "os.unlink": "os.unlink()",
    "os.rmdir": "os.rmdir()",
    "os.removedirs": "os.removedirs()",
    "os.rename": "os.rename() (use os.replace for atomic overwrite)",
    "shutil.rmtree": "shutil.rmtree()",
    "shutil.move": "shutil.move()",
}


@dataclass(frozen=True)
class SourceHit:
    """One nondeterministic source found in a function's own scope."""

    kind: str  # "clock" | "rng-global" | "rng-unseeded" | "env" | ...
    detail: str
    line: int
    col: int


@dataclass(frozen=True)
class EffectHit:
    """One non-idempotent observable side effect."""

    kind: str  # "append-open" | "destructive" | "unlink"
    detail: str
    line: int
    col: int


def _imports_for(fi: FunctionInfo) -> dict[str, str]:
    imports = dict(fi.module.imports)
    imports.update(fi.local_imports)
    return imports


def _is_local(fi: FunctionInfo, root: str) -> bool:
    return root in fi.locals and root not in fi.local_imports


def _classify_call(fi: FunctionInfo, resolved: str,
                   node: ast.Call) -> SourceHit | None:
    parts = resolved.split(".")
    tail = parts[-1]
    line, col = node.lineno, node.col_offset
    if resolved in _ENV_CALLS:
        return SourceHit("env", f"{resolved}()", line, col)
    if len(parts) == 2 and parts[0] == "time" and tail in _CLOCK_NAMES:
        return SourceHit("clock", f"{resolved}()", line, col)
    if parts[0] in ("datetime", "datetime.datetime") \
            and tail in _DATETIME_NOW:
        return SourceHit("clock", f"{resolved}()", line, col)
    if len(parts) == 2 and parts[0] == "random" \
            and tail in _RANDOM_GLOBAL_FUNCS:
        return SourceHit("rng-global", f"{resolved}()", line, col)
    is_np_random = len(parts) >= 2 and parts[-2] == "random" \
        and parts[0] in ("np", "numpy")
    if is_np_random and tail not in _RNG_FACTORIES:
        return SourceHit("rng-global", f"{resolved}()", line, col)
    if tail in _RNG_FACTORIES and (is_np_random or len(parts) == 1):
        seeded = bool(node.args) or any(
            kw.arg in ("seed", "bit_generator") for kw in node.keywords
        )
        if not seeded:
            return SourceHit("rng-unseeded", f"unseeded {tail}()",
                             line, col)
    if resolved in ("uuid.uuid1", "uuid.uuid4", "os.urandom") \
            or parts[0] == "secrets":
        return SourceHit("entropy", f"{resolved}()", line, col)
    return None


def scan_sources(fi: FunctionInfo) -> list[SourceHit]:
    """Nondeterministic sources in ``fi``'s own scope."""
    imports = _imports_for(fi)
    hits: list[SourceHit] = []
    for node in iter_own_nodes(fi.node):
        if isinstance(node, ast.Call):
            chain = chain_of(node.func)
            if not chain or _is_local(fi, chain.split(".")[0]):
                continue
            hit = _classify_call(
                fi, resolve_chain_text(chain, imports), node)
            if hit is not None:
                hits.append(hit)
        elif isinstance(node, ast.Subscript) and \
                isinstance(node.ctx, ast.Load):
            chain = chain_of(node.value)
            if chain and not _is_local(fi, chain.split(".")[0]) and \
                    resolve_chain_text(chain, imports) == "os.environ":
                hits.append(SourceHit(
                    "env", "os.environ[...]", node.lineno,
                    node.col_offset))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            hit = _set_iteration(fi, node.iter, imports)
            if hit is not None:
                hits.append(hit)
        elif isinstance(node, ast.comprehension):
            hit = _set_iteration(fi, node.iter, imports)
            if hit is not None:
                hits.append(hit)
    return hits


def _set_iteration(fi: FunctionInfo, iter_expr: ast.expr,
                   imports: dict[str, str]) -> SourceHit | None:
    if isinstance(iter_expr, (ast.Set, ast.SetComp)):
        return SourceHit("set-order", "iteration over a set literal",
                         iter_expr.lineno, iter_expr.col_offset)
    if isinstance(iter_expr, ast.Call):
        chain = chain_of(iter_expr.func)
        if chain and not _is_local(fi, chain.split(".")[0]):
            resolved = resolve_chain_text(chain, imports)
            if resolved in ("set", "frozenset") and iter_expr.args:
                return SourceHit(
                    "set-order", f"iteration over {resolved}(...)",
                    iter_expr.lineno, iter_expr.col_offset)
    return None


def _open_mode(node: ast.Call) -> str:
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return ""


def scan_effects(fi: FunctionInfo) -> list[EffectHit]:
    """Non-idempotent observable side effects in ``fi``'s own scope."""
    imports = _imports_for(fi)
    hits: list[EffectHit] = []
    for node in iter_own_nodes(fi.node):
        if not isinstance(node, ast.Call):
            continue
        chain = chain_of(node.func)
        if not chain:
            continue
        line, col = node.lineno, node.col_offset
        root_is_local = _is_local(fi, chain.split(".")[0])
        resolved = chain if root_is_local \
            else resolve_chain_text(chain, imports)
        tail = resolved.rsplit(".", 1)[-1]
        if not root_is_local and resolved in _DESTRUCTIVE_CALLS:
            hits.append(EffectHit(
                "destructive", _DESTRUCTIVE_CALLS[resolved],
                line, col))
        elif not root_is_local and resolved in ("open", "io.open"):
            if "a" in _open_mode(node):
                hits.append(EffectHit(
                    "append-open",
                    f"open(..., {_open_mode(node)!r})", line, col))
        elif tail == "unlink" and "." in chain and \
                resolved not in ("os.unlink",):
            if not any(kw.arg == "missing_ok" for kw in node.keywords):
                hits.append(EffectHit(
                    "unlink", f"{chain}.unlink() without "
                    "missing_ok=True", line, col))
    return hits
