"""The whole-program flow rules: REP013 through REP017.

Each rule consumes the :class:`~repro.check.flow.callgraph.Program`
and its computed :class:`~repro.check.flow.callgraph.Bindings` and
reports raw findings ``(path, line, col, message, symbol)``, where
``symbol`` is the bound function's qualname — the stable identity the
baseline file matches on (line numbers shift; qualnames rarely do).

Scoping: a finding is only raised inside *untrusted* modules (the walk
already stops at ``repro.obs``/``repro.config``/``repro.check``/
``repro.testing``), and the captured global itself must live in an
untrusted module too — reading a trusted module's internals is that
module's contract to keep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.check.flow.callgraph import Bindings, FunctionInfo, Program
from repro.check.flow.purity import scan_effects, scan_sources
from repro.check.flow.modules import is_trusted

__all__ = ["FLOW_RULES", "FlowRule", "flow_rules_by_id"]

RawFlowFinding = tuple[str, int, int, str, str]
FlowChecker = Callable[[Program, Bindings], list[RawFlowFinding]]


@dataclass(frozen=True)
class FlowRule:
    """One whole-program rule: identity, docs, and checker."""

    id: str
    title: str
    severity: str  # "error" | "warning"
    rationale: str
    fix_hint: str
    check: FlowChecker


def _bound_functions(
    program: Program, bindings: Bindings, kind: str,
) -> list[tuple[FunctionInfo, str]]:
    out = []
    for qual in bindings.functions_bound(kind):
        fi = program.functions.get(qual)
        if fi is not None:
            out.append((fi, qual))
    return out


def _capture_findings(
    program: Program, bindings: Bindings, *,
    symbol_kind: Callable[..., str], describe: str,
) -> list[RawFlowFinding]:
    """Shared capture scan: worker-bound uses of classified globals."""
    out: list[RawFlowFinding] = []
    seen: set[tuple[str, str, str]] = set()
    for fi, qual in _bound_functions(program, bindings, "worker"):
        origin = bindings.bound[qual]["worker"]
        for use in fi.uses:
            resolved = program.resolve_use(fi, use)
            if resolved is None:
                continue
            module, sym = resolved
            kind = symbol_kind(sym)
            if not kind or is_trusted(module):
                continue
            key = (qual, module.name, sym.name)
            if key in seen:
                continue
            seen.add(key)
            out.append((
                str(fi.module.path), use.line, use.col,
                f"{fi.display} ({origin.describe()}) captures "
                f"{describe} {module.name}.{sym.name} ({kind})",
                qual,
            ))
    return out


def _check_rep013(program: Program,
                  bindings: Bindings) -> list[RawFlowFinding]:
    def mutable(sym: object) -> str:
        kind = getattr(sym, "mutable_kind", "")
        name = getattr(sym, "name", "")
        mutated = getattr(sym, "mutated", False)
        if not kind:
            return ""
        if name.upper() == name and not mutated:
            return ""  # never-mutated ALL_CAPS constant table
        if mutated:
            return f"mutable {kind}, mutated at runtime"
        return f"mutable {kind}"

    return _capture_findings(
        program, bindings, symbol_kind=mutable,
        describe="mutable module global")


def _check_rep014(program: Program,
                  bindings: Bindings) -> list[RawFlowFinding]:
    def unpicklable(sym: object) -> str:
        return str(getattr(sym, "unpicklable_kind", ""))

    return _capture_findings(
        program, bindings, symbol_kind=unpicklable,
        describe="non-picklable module global")


def _check_rep016(program: Program,
                  bindings: Bindings) -> list[RawFlowFinding]:
    def fork_unsafe(sym: object) -> str:
        return str(getattr(sym, "fork_unsafe_kind", ""))

    return _capture_findings(
        program, bindings, symbol_kind=fork_unsafe,
        describe="fork-unsafe resource")


def _check_rep015(program: Program,
                  bindings: Bindings) -> list[RawFlowFinding]:
    out: list[RawFlowFinding] = []
    seen: set[tuple[str, str, str]] = set()
    for qual in sorted(bindings.bound):
        fi = program.functions.get(qual)
        if fi is None:
            continue
        kinds = bindings.bound[qual]
        origin = kinds.get("cache") or kinds["worker"]
        consequence = (
            "its value can flow into a store key or cached result"
            if "cache" in kinds
            else "its value can differ across executor retries"
        )
        for hit in scan_sources(fi):
            key = (qual, hit.kind, hit.detail)
            if key in seen:
                continue
            seen.add(key)
            out.append((
                str(fi.module.path), hit.line, hit.col,
                f"{fi.display} ({origin.describe()}) reads "
                f"nondeterministic source {hit.detail}; {consequence}",
                qual,
            ))
    return out


def _check_rep017(program: Program,
                  bindings: Bindings) -> list[RawFlowFinding]:
    out: list[RawFlowFinding] = []
    seen: set[tuple[str, str, str]] = set()
    for fi, qual in _bound_functions(program, bindings, "worker"):
        if fi.raises_skipstore:
            continue  # partial results are already vetoed from cache
        origin = bindings.bound[qual]["worker"]
        for hit in scan_effects(fi):
            key = (qual, hit.kind, hit.detail)
            if key in seen:
                continue
            seen.add(key)
            out.append((
                str(fi.module.path), hit.line, hit.col,
                f"{fi.display} ({origin.describe()}) performs "
                f"non-idempotent side effect {hit.detail}; a retry "
                "re-executes it against already-modified state",
                qual,
            ))
    return out


FLOW_RULES: tuple[FlowRule, ...] = (
    FlowRule(
        id="REP013",
        title="mutable module global captured by a worker-bound "
              "callable",
        severity="error",
        rationale="A task that reads or mutates a module-level dict/"
                  "list/set executes against a fork-copied snapshot "
                  "that drifts per worker: results depend on which "
                  "process ran the task and what ran there before.  "
                  "This is the whole-program generalization of REP005 "
                  "— the capture can be many calls away from the "
                  "parallel_map that ships it.",
        fix_hint="pass the state explicitly through task arguments, "
                 "use functools.lru_cache for per-process memos, or "
                 "rename to ALL_CAPS if it is a never-mutated constant "
                 "table",
        check=_check_rep013,
    ),
    FlowRule(
        id="REP014",
        title="non-picklable module global reaching a process-backend "
              "task",
        severity="error",
        rationale="Module-level lambdas, generator expressions, and "
                  "live iterators either fail to pickle when the task "
                  "is shipped to a process pool or (for iterators) are "
                  "silently re-created empty in the child — the task "
                  "works on the serial backend and dies or drifts on "
                  "the process backend.",
        fix_hint="replace module-level lambdas with def functions and "
                 "materialize iterators (list(...)) before they are "
                 "captured by task code",
        check=_check_rep014,
    ),
    FlowRule(
        id="REP015",
        title="nondeterministic source reaching a cached or retried "
              "computation",
        severity="error",
        rationale="The store's contract is that a key identifies one "
                  "value forever and a retried task recomputes the "
                  "same result.  A clock, global/unseeded RNG, env "
                  "read outside repro.config, or set-ordered iteration "
                  "inside such a computation silently breaks both: "
                  "cache hits return values no longer derivable from "
                  "the inputs, and retries diverge from the run they "
                  "replace.",
        fix_hint="derive randomness from ReproConfig.base_seed, read "
                 "environment knobs through repro.config accessors at "
                 "the call boundary, use repro.obs for timing, and "
                 "sort sets before iterating",
        check=_check_rep015,
    ),
    FlowRule(
        id="REP016",
        title="fork-unsafe resource captured across a process boundary",
        severity="error",
        rationale="Open file handles, locks, sockets, and subprocess "
                  "handles captured at module level are duplicated by "
                  "fork and invalid after spawn: two processes share "
                  "one file offset, a copied lock deadlocks, a socket "
                  "fd is serviced twice.",
        fix_hint="open the resource inside the task (per process), or "
                 "pass a path/address and reconnect in the worker",
        check=_check_rep016,
    ),
    FlowRule(
        id="REP017",
        title="retried task with non-idempotent observable side "
              "effects",
        severity="warning",
        rationale="The executor's retry policy re-runs failed tasks; "
                  "an append-mode write doubles its records, a bare "
                  "unlink/rename raises on the second attempt, and an "
                  "rmtree can destroy state a concurrent task is "
                  "using.  Task effects must converge under "
                  "re-execution, or the task must veto caching via "
                  "SkipStore and declare itself unsafe to retry.",
        fix_hint="make the effect idempotent (os.replace, write_text, "
                 "unlink(missing_ok=True)) or raise SkipStore around "
                 "partial results so they are never treated as "
                 "authoritative",
        check=_check_rep017,
    ),
)


def flow_rules_by_id() -> dict[str, FlowRule]:
    """Mapping from flow rule ID to rule."""
    return {rule.id: rule for rule in FLOW_RULES}
