"""Whole-program concurrency and determinism analysis (``--deep``).

Where :mod:`repro.check.engine` lints one file at a time,
:mod:`repro.check.flow` links every module under the given paths into
a :class:`~repro.check.flow.callgraph.Program` — import graph, symbol
tables, call graph — runs a capture/escape fixpoint to find every
callable that executes inside a worker process or computes a
store-cached value, and checks those callables against the REP013 to
REP017 rules (:mod:`repro.check.flow.rules`).

:func:`deep_lint` is the library entry point; the CLI exposes it as
``repro lint --deep`` and the graph itself as
``python -m repro.check graph``.  Findings carry the bound function's
qualname in :attr:`~repro.check.engine.Finding.symbol`, which is what
the baseline file (:mod:`repro.check.baseline`) matches on.

The per-file ``# repro: noqa[REPxxx]`` machinery applies to deep
findings exactly as it does to syntactic ones.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.check.engine import Finding, _noqa_suppressions, _suppressed
from repro.check.flow.callgraph import (
    BindOrigin,
    Bindings,
    CallSite,
    EntryPoint,
    FunctionInfo,
    Program,
    Use,
    build_program,
)
from repro.check.flow.modules import ModuleInfo, Symbol, \
    discover_modules
from repro.check.flow.render import graph_dot, graph_json
from repro.check.flow.rules import FLOW_RULES, FlowRule, \
    flow_rules_by_id

__all__ = [
    "BindOrigin",
    "Bindings",
    "CallSite",
    "EntryPoint",
    "FLOW_RULES",
    "FlowRule",
    "FunctionInfo",
    "ModuleInfo",
    "Program",
    "Symbol",
    "Use",
    "build_program",
    "deep_lint",
    "discover_modules",
    "flow_rules_by_id",
    "graph_dot",
    "graph_json",
]


def deep_lint(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    program: Program | None = None,
) -> list[Finding]:
    """Run the whole-program rules over ``paths``.

    ``select`` restricts to specific flow rule IDs; other IDs are
    ignored here (the caller merges with the per-file engine).  Pass a
    prebuilt ``program`` to reuse one across calls (the graph CLI and
    the benchmark do).
    """
    if program is None:
        program = build_program([str(p) for p in paths])
    bindings = program.bindings()
    wanted = None if select is None else {s.upper() for s in select}

    noqa_cache: dict[str, tuple[frozenset[str],
                                dict[int, frozenset[str]]]] = {}
    for module in program.modules.values():
        noqa_cache[str(module.path)] = _noqa_suppressions(module.lines)

    findings: list[Finding] = []
    for rule in FLOW_RULES:
        if wanted is not None and rule.id not in wanted:
            continue
        for path, line, col, message, symbol in rule.check(
                program, bindings):
            file_noqa, line_noqa = noqa_cache.get(
                path, (frozenset(), {}))
            if _suppressed(rule.id, file_noqa):
                continue
            if _suppressed(rule.id, line_noqa.get(line, frozenset())):
                continue
            findings.append(Finding(
                rule_id=rule.id, severity=rule.severity, path=path,
                line=line, col=col, message=message,
                fix_hint=rule.fix_hint, symbol=symbol,
            ))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings
