"""Module discovery and symbol tables for the whole-program analyzer.

This is the bottom layer of :mod:`repro.check.flow`: it walks the input
paths exactly like the per-file engine does (``**/*.py``), derives each
file's dotted module name by ascending to the outermost package root
(the last ancestor directory containing ``__init__.py``), parses it
once, and builds a :class:`ModuleInfo` per module with

- a symbol table (:class:`Symbol`) classifying every module-level
  binding: definitions, classes, imports, and assignments — the latter
  tagged with whether their initializer is a mutable container, an
  unpicklable value (lambda, generator, ``iter``/``map`` object), or a
  fork-unsafe resource (open file, lock, socket, subprocess handle);
- an import map from local name to absolute dotted target, with
  relative imports resolved against the module's package.

The call-graph layer (:mod:`repro.check.flow.callgraph`) resolves names
through these tables; the rules layer reads the symbol classifications.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "ModuleInfo",
    "Symbol",
    "chain_of",
    "discover_modules",
    "is_trusted",
    "iter_own_nodes",
    "resolve_chain_text",
]

#: Call tails whose result is a mutable container (mirrors REP005).
MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "defaultdict", "OrderedDict", "deque",
    "Counter",
})

#: Resolved call chains whose result cannot cross a pickle boundary.
UNPICKLABLE_CALLS = frozenset({"iter", "map", "filter", "zip"})

#: Resolved call chains producing resources that must not be captured
#: across a fork/spawn boundary, mapped to a human-readable kind.
FORK_UNSAFE_CALLS: dict[str, str] = {
    "open": "open file handle",
    "io.open": "open file handle",
    "tempfile.NamedTemporaryFile": "open file handle",
    "tempfile.TemporaryFile": "open file handle",
    "threading.Lock": "lock",
    "threading.RLock": "lock",
    "threading.Condition": "condition variable",
    "threading.Event": "event",
    "threading.Semaphore": "semaphore",
    "threading.BoundedSemaphore": "semaphore",
    "threading.Barrier": "barrier",
    "multiprocessing.Lock": "lock",
    "multiprocessing.RLock": "lock",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "sqlite3.connect": "sqlite3 connection",
    "subprocess.Popen": "subprocess handle",
}

#: Subpackages (relative to the top-level package) whose internals are
#: exempt from the deep walk: they either *are* the sanctioned home for
#: a source (``config`` owns env reads, ``obs`` owns clocks) or are
#: tooling that never runs inside a worker or cache computation.
TRUSTED_PREFIXES: tuple[str, ...] = ("obs", "config", "check", "testing")


@dataclass
class Symbol:
    """One module-level binding and its flow-relevant classification."""

    name: str
    kind: str  # "def" | "class" | "import" | "assign"
    lineno: int
    target: str = ""  # dotted target for kind == "import"
    mutable_kind: str = ""  # "list"/"dict"/... for mutable initializers
    unpicklable_kind: str = ""  # "lambda"/"generator"/"iterator"
    fork_unsafe_kind: str = ""  # "open file handle"/"lock"/...
    mutated: bool = False  # set by the call-graph pass


@dataclass
class ModuleInfo:
    """A parsed module: name, source, symbol table, import map."""

    name: str
    path: Path
    is_package: bool
    tree: ast.Module
    lines: list[str]
    symbols: dict[str, Symbol] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)

    @property
    def relative_parts(self) -> tuple[str, ...]:
        """Dotted-name components after the top-level package."""
        return tuple(self.name.split("."))[1:]


def is_trusted(module: ModuleInfo) -> bool:
    """Whether the deep walk stops at this module's boundary."""
    rel = module.relative_parts
    return bool(rel) and rel[0] in TRUSTED_PREFIXES


def chain_of(node: ast.AST) -> str:
    """Dotted-name string for Name/Attribute chains (else ``''``)."""
    out: list[str] = []
    while isinstance(node, ast.Attribute):
        out.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        out.append(node.id)
        return ".".join(reversed(out))
    return ""


def resolve_chain_text(chain: str, imports: dict[str, str]) -> str:
    """Rewrite a dotted chain's root through an import map.

    ``environ.get`` with ``{"environ": "os.environ"}`` becomes
    ``os.environ.get``; an unmapped root passes through unchanged.
    """
    if not chain:
        return chain
    root, _, rest = chain.partition(".")
    target = imports.get(root)
    if target is None:
        return chain
    return f"{target}.{rest}" if rest else target


def iter_own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Nodes in ``root``'s own scope, skipping nested function bodies.

    For a function/lambda, yields every node of its body without
    descending into nested ``def``s, lambdas, or class bodies (those
    are separate scopes with their own :class:`FunctionInfo`).  The
    nested definition node itself is *not* yielded.
    """
    if isinstance(root, ast.Lambda):
        stack: list[ast.AST] = [root.body]
    elif isinstance(root, (ast.FunctionDef, ast.AsyncFunctionDef)):
        stack = list(root.body)
    elif isinstance(root, ast.Module):
        stack = [n for n in root.body
                 if not isinstance(n, (ast.FunctionDef,
                                       ast.AsyncFunctionDef,
                                       ast.ClassDef))]
    else:
        stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _classify_assign(value: ast.AST,
                     imports: dict[str, str]) -> tuple[str, str, str]:
    """``(mutable_kind, unpicklable_kind, fork_unsafe_kind)`` of an
    initializer expression."""
    mutable = unpicklable = fork_unsafe = ""
    if isinstance(value, (ast.List, ast.ListComp)):
        mutable = "list"
    elif isinstance(value, (ast.Dict, ast.DictComp)):
        mutable = "dict"
    elif isinstance(value, (ast.Set, ast.SetComp)):
        mutable = "set"
    elif isinstance(value, ast.Lambda):
        unpicklable = "lambda"
    elif isinstance(value, ast.GeneratorExp):
        unpicklable = "generator expression"
    elif isinstance(value, ast.Call):
        resolved = resolve_chain_text(chain_of(value.func), imports)
        tail = resolved.rsplit(".", 1)[-1]
        if tail in MUTABLE_CALLS:
            mutable = tail
        elif resolved in UNPICKLABLE_CALLS:
            unpicklable = f"{resolved}() iterator"
        elif resolved in FORK_UNSAFE_CALLS:
            fork_unsafe = FORK_UNSAFE_CALLS[resolved]
    return mutable, unpicklable, fork_unsafe


def _import_anchor(module_name: str, is_package: bool, level: int) -> str:
    """Absolute package a ``level``-dots relative import resolves in."""
    drop = level - 1 if is_package else level
    parts = module_name.split(".")
    if drop >= len(parts):
        return ""
    return ".".join(parts[: len(parts) - drop]) if drop else module_name


def _record_imports(info: ModuleInfo) -> None:
    for stmt in info.tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                info.imports[local] = target
                info.symbols[local] = Symbol(
                    name=local, kind="import", lineno=stmt.lineno,
                    target=target,
                )
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.level:
                anchor = _import_anchor(
                    info.name, info.is_package, stmt.level)
                base = f"{anchor}.{stmt.module}" if stmt.module else anchor
            else:
                base = stmt.module or ""
            if not base:
                continue
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                target = f"{base}.{alias.name}"
                info.imports[local] = target
                info.symbols[local] = Symbol(
                    name=local, kind="import", lineno=stmt.lineno,
                    target=target,
                )


def _record_definitions(info: ModuleInfo) -> None:
    for stmt in info.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.symbols[stmt.name] = Symbol(
                name=stmt.name, kind="def", lineno=stmt.lineno)
        elif isinstance(stmt, ast.ClassDef):
            info.symbols[stmt.name] = Symbol(
                name=stmt.name, kind="class", lineno=stmt.lineno)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            if isinstance(stmt, ast.Assign):
                targets: list[ast.expr] = list(stmt.targets)
                value = stmt.value
            else:
                targets = [stmt.target]
                value = stmt.value if stmt.value is not None else None
            if value is None:
                continue
            mut, unp, fork = _classify_assign(value, info.imports)
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                info.symbols[target.id] = Symbol(
                    name=target.id, kind="assign", lineno=stmt.lineno,
                    mutable_kind=mut, unpicklable_kind=unp,
                    fork_unsafe_kind=fork,
                )


def _module_name(path: Path) -> tuple[str, bool]:
    """Dotted module name for ``path`` and whether it is a package."""
    path = path.resolve()
    is_package = path.name == "__init__.py"
    parts: list[str] = [] if is_package else [path.stem]
    current = path.parent
    while (current / "__init__.py").is_file():
        parts.append(current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    if not parts:  # a stray __init__.py outside any package dir
        parts = [path.parent.name]
    return ".".join(reversed(parts)), is_package


def _collect_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in candidates:
            if f not in seen:
                seen.add(f)
                files.append(f)
    return files


def discover_modules(
    paths: Iterable[str | Path],
) -> dict[str, ModuleInfo]:
    """Parse every ``.py`` file under ``paths`` into a module table.

    Files that do not parse are skipped here — the per-file engine
    already reports them as ``REP000``.  On duplicate module names the
    first file wins.
    """
    modules: dict[str, ModuleInfo] = {}
    for file in _collect_files(paths):
        try:
            source = file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file))
        except (OSError, SyntaxError):
            continue
        name, is_package = _module_name(file)
        if name in modules:
            continue
        info = ModuleInfo(
            name=name, path=file, is_package=is_package,
            tree=tree, lines=source.splitlines(),
        )
        _record_imports(info)
        _record_definitions(info)
        modules[name] = info
    return modules
