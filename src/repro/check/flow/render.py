"""Call-graph rendering for ``python -m repro.check graph``.

Two formats over the same :class:`~repro.check.flow.callgraph.Program`:

- ``graph_json`` — modules, functions, resolved call edges, the
  concurrency/caching entry points, and the worker/cache bound sets,
  as one JSON-serializable dict (schema version ``1``);
- ``graph_dot`` — a Graphviz digraph clustered by module, with
  worker-bound nodes outlined red, cache-bound nodes blue, and entry
  edges labelled with their kind.
"""

from __future__ import annotations

from typing import Any

from repro.check.flow.callgraph import FunctionInfo, Program

__all__ = ["GRAPH_SCHEMA_VERSION", "graph_dot", "graph_json"]

GRAPH_SCHEMA_VERSION = 1


def _edges(program: Program) -> list[tuple[str, str]]:
    out: set[tuple[str, str]] = set()
    for fi in program.functions.values():
        for cs in fi.calls:
            if not cs.chain:
                continue
            target = program.resolve_callable(fi, cs.chain)
            if isinstance(target, FunctionInfo) and \
                    not target.is_synthetic:
                out.add((fi.qualname, target.qualname))
    return sorted(out)


def graph_json(program: Program) -> dict[str, Any]:
    """The program's import/call graph as a JSON-ready dict."""
    bindings = program.bindings()
    return {
        "schema": GRAPH_SCHEMA_VERSION,
        "modules": sorted(program.modules),
        "functions": [
            {
                "qualname": fi.qualname,
                "path": str(fi.module.path),
                "line": fi.lineno,
            }
            for fi in sorted(program.functions.values(),
                             key=lambda f: f.qualname)
            if not fi.is_synthetic
        ],
        "edges": [list(edge) for edge in _edges(program)],
        "entries": [
            {"kind": e.kind, "entry": e.entry, "target": e.target}
            for e in bindings.entries
        ],
        "bound": {
            "worker": bindings.functions_bound("worker"),
            "cache": bindings.functions_bound("cache"),
        },
    }


def _dot_id(qualname: str) -> str:
    return '"' + qualname.replace('"', "'") + '"'


def graph_dot(program: Program) -> str:
    """The program's call graph as Graphviz DOT text."""
    bindings = program.bindings()
    worker = set(bindings.functions_bound("worker"))
    cache = set(bindings.functions_bound("cache"))
    lines = [
        "digraph repro_flow {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=10, fontname="monospace"];',
    ]
    for i, (mod_name, module) in enumerate(sorted(program.modules
                                                  .items())):
        members = [fi for fi in program.functions.values()
                   if fi.module is module and not fi.is_synthetic]
        if not members:
            continue
        lines.append(f"  subgraph cluster_{i} {{")
        lines.append(f'    label="{mod_name}"; color=gray;')
        for fi in sorted(members, key=lambda f: f.qualname):
            attrs = []
            if fi.qualname in worker:
                attrs.append("color=red, penwidth=2")
            elif fi.qualname in cache:
                attrs.append("color=blue, penwidth=2")
            label = fi.qualname[len(mod_name) + 1:] or fi.name
            attrs.append(f'label="{label}"')
            lines.append(
                f"    {_dot_id(fi.qualname)} [{', '.join(attrs)}];")
        lines.append("  }")
    for src, dst in _edges(program):
        lines.append(f"  {_dot_id(src)} -> {_dot_id(dst)};")
    for e in bindings.entries:
        lines.append(
            f'  "entry:{e.kind}" [shape=ellipse, style=dashed, '
            f'label="{e.kind} entry"];')
        lines.append(
            f'  "entry:{e.kind}" -> {_dot_id(e.target)} '
            f"[style=dashed];")
    lines.append("}")
    return "\n".join(lines)
