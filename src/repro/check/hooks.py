"""Low-overhead runtime hook points for the numeric sanitizer.

Production modules (:mod:`repro.compressors.base`, :mod:`repro.pvt`,
:mod:`repro.parallel`) decorate their boundary functions with
:func:`boundary`.  When the sanitizer is inactive — the default — a
decorated call costs one flag check; when ``REPRO_SANITIZE=1`` (or inside
:func:`repro.check.sanitize.sanitized`), each boundary runs cheap invariant
checks and raises a structured :class:`SanitizerError` naming the check,
the offending codec/function, and the diagnostic context.

This module deliberately imports nothing from :mod:`repro` except the
stdlib-only :mod:`repro.config` (thresholds and environment knobs) and
the dependency-free container framing, so any layer can hook into it
without import cycles.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from functools import wraps
from typing import Any, Callable

import numpy as np

from repro import config
from repro.config import SPECIAL_THRESHOLD
from repro.encoding.container import SectionReader

__all__ = [
    "SanitizerError",
    "active",
    "boundary",
    "check_serial_replay",
    "get_override",
    "set_override",
]

_HEADER = struct.Struct("<B2sB")  # must match Compressor._HEADER
_DTYPES = {"f4": np.dtype(np.float32), "f8": np.dtype(np.float64)}


class SanitizerError(RuntimeError):
    """A runtime invariant of the compression/PVT pipeline was violated.

    Attributes
    ----------
    check:
        Short name of the failed guard (e.g. ``"dtype-preserved"``).
    subject:
        The codec variant or function the violation was observed in.
    context:
        Diagnostic key/value pairs (offending dtype, shape, indices...).
    """

    def __init__(self, check: str, subject: str, message: str,
                 **context: Any) -> None:
        self.check = check
        self.subject = subject
        self.context = dict(context)
        detail = ""
        if context:
            pairs = ", ".join(f"{k}={v!r}" for k, v in context.items())
            detail = f" [{pairs}]"
        super().__init__(f"[{check}] {subject}: {message}{detail}")


# -- activation --------------------------------------------------------------

#: Tri-state override installed by ``repro.check.sanitize.sanitized``;
#: ``None`` defers to the ``REPRO_SANITIZE`` environment variable.
_override: bool | None = None


def set_override(value: bool | None) -> None:
    """Force the sanitizer on/off (``None`` restores env control)."""
    global _override
    _override = value


def get_override() -> bool | None:
    """Current override state (``None`` means env-controlled)."""
    return _override


def active() -> bool:
    """Whether sanitizer guards should run for the current call."""
    if _override is not None:
        return _override
    return config.env_flag("REPRO_SANITIZE")


# -- blob metadata cache -----------------------------------------------------

# compress() records what went into a blob so that decompress() can verify
# the round trip (dtype in == dtype out, no new NaN/Inf outside the fill
# mask) no matter how far apart the two calls happen.  Keyed by the blob's
# built-in hash (salted per process, stable within one); bounded so large
# sweeps cannot accumulate masks.
_BLOB_META: OrderedDict[tuple[int, int], dict[str, Any]] = OrderedDict()
_BLOB_META_MAX = 8


def _remember_blob(blob: bytes, data: np.ndarray) -> None:
    flat = np.ascontiguousarray(data).reshape(-1)
    valid = np.isfinite(flat) & (np.abs(flat) < SPECIAL_THRESHOLD)
    key = (len(blob), hash(blob))
    _BLOB_META[key] = {
        "dtype": data.dtype,
        "shape": tuple(data.shape),
        "valid_bits": np.packbits(valid),
        "count": flat.shape[0],
    }
    while len(_BLOB_META) > _BLOB_META_MAX:
        _BLOB_META.popitem(last=False)


def _recall_blob(blob: bytes) -> dict[str, Any] | None:
    return _BLOB_META.get((len(blob), hash(blob)))


def _parse_header(blob: bytes, subject: str) -> tuple[np.dtype, tuple[int, ...], str]:
    """Parse and integrity-check a compressor blob's container header."""
    try:
        reader = SectionReader(blob)
    except ValueError as exc:
        raise SanitizerError(
            "container-integrity", subject,
            f"blob is not a parseable section container: {exc}",
        ) from exc
    for section in ("head", "data"):
        if section not in reader:
            raise SanitizerError(
                "container-integrity", subject,
                f"blob is missing its {section!r} section",
                sections=reader.names(),
            )
    head = reader.get("head")
    version, dtype_code, ndim = _HEADER.unpack_from(head, 0)
    if version != 1:
        raise SanitizerError(
            "container-integrity", subject,
            f"unknown blob version {version}",
        )
    code = dtype_code.decode()
    if code not in _DTYPES:
        raise SanitizerError(
            "container-integrity", subject,
            f"blob declares unsupported dtype code {code!r}",
        )
    shape = struct.unpack_from(f"<{ndim}Q", head, _HEADER.size)
    tag = head[_HEADER.size + 8 * ndim:].decode("utf-8")
    return _DTYPES[code], tuple(int(s) for s in shape), tag


# -- boundary checks ---------------------------------------------------------

def _subject(obj: Any, fallback: str) -> str:
    variant = getattr(obj, "variant", None)
    if isinstance(variant, str):
        return variant
    return getattr(type(obj), "__name__", fallback)


def _check_compress(fn: Callable, args: tuple, kwargs: dict) -> Any:
    blob = fn(*args, **kwargs)
    codec = args[0]
    subject = _subject(codec, "compress")
    data = np.asarray(args[1] if len(args) > 1 else kwargs["data"])
    dtype, shape, tag = _parse_header(blob, subject)
    if dtype != data.dtype:
        raise SanitizerError(
            "container-integrity", subject,
            "blob header dtype disagrees with the input array",
            header_dtype=str(dtype), input_dtype=str(data.dtype),
        )
    if shape != tuple(data.shape):
        raise SanitizerError(
            "container-integrity", subject,
            "blob header shape disagrees with the input array",
            header_shape=shape, input_shape=tuple(data.shape),
        )
    expected_tag = getattr(codec, "_codec_tag", lambda: tag)()
    if tag != expected_tag:
        raise SanitizerError(
            "container-integrity", subject,
            "blob codec tag disagrees with the emitting codec",
            blob_tag=tag, codec_tag=expected_tag,
        )
    _remember_blob(blob, data)
    return blob


def _check_decompress(fn: Callable, args: tuple, kwargs: dict) -> Any:
    out = fn(*args, **kwargs)
    codec = args[0]
    subject = _subject(codec, "decompress")
    blob = args[1] if len(args) > 1 else kwargs["blob"]
    dtype, shape, _ = _parse_header(blob, subject)
    out = np.asarray(out)
    if out.dtype != dtype:
        raise SanitizerError(
            "dtype-preserved", subject,
            "decoded dtype disagrees with the blob header",
            header_dtype=str(dtype), output_dtype=str(out.dtype),
        )
    if tuple(out.shape) != shape:
        raise SanitizerError(
            "shape-preserved", subject,
            "decoded shape disagrees with the blob header",
            header_shape=shape, output_shape=tuple(out.shape),
        )
    meta = _recall_blob(blob)
    if meta is not None:
        if out.dtype != meta["dtype"] or tuple(out.shape) != meta["shape"]:
            raise SanitizerError(
                "dtype-preserved", subject,
                "round trip changed the array's dtype or shape",
                input_dtype=str(meta["dtype"]), output_dtype=str(out.dtype),
                input_shape=meta["shape"], output_shape=tuple(out.shape),
            )
        valid = np.unpackbits(
            meta["valid_bits"], count=meta["count"]
        ).astype(bool)
        flat = np.ascontiguousarray(out).reshape(-1)
        bad = valid & ~np.isfinite(flat)
        if bad.any():
            where = np.flatnonzero(bad)
            raise SanitizerError(
                "no-new-nonfinite", subject,
                "round trip introduced NaN/Inf at points that were valid "
                "and finite in the input",
                n_bad=int(where.size), first_index=int(where[0]),
                first_value=float(flat[where[0]]),
            )
    return out


def _check_zscores(fn: Callable, args: tuple, kwargs: dict) -> Any:
    z = fn(*args, **kwargs)
    stats = args[0]
    subject = type(stats).__name__ + ".zscores"
    z = np.asarray(z)
    n_points = getattr(stats, "n_points", None)
    if z.ndim != 1 or (n_points is not None and z.shape[0] != n_points):
        raise SanitizerError(
            "zscore-shape", subject,
            "Z-score vector does not cover the valid grid points",
            shape=tuple(z.shape), n_points=n_points,
        )
    if np.isinf(z).any():
        raise SanitizerError(
            "zscore-finite", subject,
            "infinite Z-score (a zero-spread point escaped the std floor)",
            n_inf=int(np.isinf(z).sum()),
        )
    return z


def _check_distribution(fn: Callable, args: tuple, kwargs: dict) -> Any:
    dist = fn(*args, **kwargs)
    stats = args[0]
    subject = type(stats).__name__ + ".distribution"
    arr = np.asarray(dist)
    n_members = getattr(stats, "n_members", None)
    _check_dist_array(arr, subject, n_members, "RMSZ")
    return dist


def _check_enmax(fn: Callable, args: tuple, kwargs: dict) -> Any:
    dist = fn(*args, **kwargs)
    ensemble = np.asarray(args[0] if args else kwargs["ensemble"])
    subject = "enmax_distribution"
    _check_dist_array(np.asarray(dist), subject, ensemble.shape[0], "E_nmax")
    return dist


def _check_dist_array(arr: np.ndarray, subject: str,
                      n_members: int | None, what: str) -> None:
    if arr.ndim != 1 or (n_members is not None and arr.shape[0] != n_members):
        raise SanitizerError(
            "distribution-shape", subject,
            f"{what} distribution must have one entry per member",
            shape=tuple(arr.shape), n_members=n_members,
        )
    if not np.isfinite(arr).all():
        raise SanitizerError(
            "distribution-finite", subject,
            f"{what} distribution contains NaN/Inf",
            n_bad=int((~np.isfinite(arr)).sum()),
        )
    if (arr < 0.0).any():
        raise SanitizerError(
            "distribution-nonnegative", subject,
            f"{what} is a root-mean-square/ratio statistic and cannot be "
            "negative",
            min=float(arr.min()),
        )


_CHECKERS: dict[str, Callable[[Callable, tuple, dict], Any]] = {
    "compress": _check_compress,
    "decompress": _check_decompress,
    "zscores": _check_zscores,
    "distribution": _check_distribution,
    "enmax": _check_enmax,
}


def boundary(kind: str) -> Callable[[Callable], Callable]:
    """Mark a function as a sanitizer boundary of the given ``kind``.

    Inactive sanitizer: the wrapper is a single flag check.  Active: the
    kind's guard validates inputs/outputs and raises :class:`SanitizerError`
    on violation.  Known kinds: ``compress``, ``decompress``, ``zscores``,
    ``distribution``, ``enmax``.
    """
    checker = _CHECKERS[kind]

    def decorate(fn: Callable) -> Callable:
        @wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not active():
                return fn(*args, **kwargs)
            return checker(fn, args, kwargs)

        wrapper.__sanitize_boundary__ = kind  # type: ignore[attr-defined]
        return wrapper

    return decorate


# -- deterministic replay ----------------------------------------------------

def _results_equal(a: Any, b: Any) -> bool:
    """Best-effort equality that treats incomparable objects as equal."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        try:
            return bool(np.array_equal(a, b, equal_nan=True))
        except (TypeError, ValueError):
            return True
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (np.isnan(a) and np.isnan(b))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _results_equal(x, y) for x, y in zip(a, b)
        )
    try:
        return bool(a == b)
    except (TypeError, ValueError):
        return True


def check_serial_replay(fn: Callable, item: Any, expected: Any) -> None:
    """Re-run ``fn(item)`` and require the same result (determinism guard).

    Called by ``parallel_map``'s serial path when the sanitizer is active:
    a task function whose output changes between identical invocations
    (unseeded RNG, shared mutable state) silently invalidates the PVT
    verdicts, so it is surfaced here as a :class:`SanitizerError`.
    """
    replay = fn(item)
    if not _results_equal(expected, replay):
        raise SanitizerError(
            "deterministic-replay",
            getattr(fn, "__qualname__", repr(fn)),
            "task function returned different results for identical "
            "invocations; seed its RNG or remove shared mutable state",
            item=repr(item)[:80],
        )
