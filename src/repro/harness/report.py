"""Plain-text rendering of tables and figure data.

No plotting stack is available offline, so "figures" are reported as the
statistics a reader would extract from them: box plots become five-number
summaries (plus an ASCII box glyph), histograms become bin counts, scatter
points become aligned rows.  Everything can also be dumped as CSV for
external plotting.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

__all__ = ["render_table", "boxplot_stats", "render_boxplot", "write_csv",
           "format_value"]


def format_value(value, precision: int = 3) -> str:
    """Compact numeric formatting: scientific for tiny/huge magnitudes."""
    if isinstance(value, bool):
        return "Y" if value else "N"
    if value is None:
        return "-"
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, (float, np.floating)):
        value = float(value)
        if value == 0.0:
            return "0"
        if not np.isfinite(value):
            return str(value)
        if abs(value) >= 10 ** (precision + 2) or abs(value) < 10 ** (-precision):
            return f"{value:.{precision - 1}e}"
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render an aligned ASCII table."""
    text_rows = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in text_rows)) if text_rows
        else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in text_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def boxplot_stats(values) -> dict[str, float]:
    """Five-number summary, the content of one box-plot column."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return {
        "min": float(values.min()),
        "q1": float(np.quantile(values, 0.25)),
        "median": float(np.median(values)),
        "q3": float(np.quantile(values, 0.75)),
        "max": float(values.max()),
        "n": int(values.size),
    }


def render_boxplot(
    columns: Mapping[str, Sequence[float]],
    title: str | None = None,
    width: int = 48,
    log: bool = False,
) -> str:
    """ASCII box plots: one `|--[=|=]--|` strip per column.

    ``log=True`` positions boxes on a log axis, which is how the paper
    draws Figure 1 (errors span eight orders of magnitude).
    """
    stats = {name: boxplot_stats(v) for name, v in columns.items()}
    lo = min(s["min"] for s in stats.values())
    hi = max(s["max"] for s in stats.values())
    if log:
        floor = min(
            (min(x for x in np.ravel(v) if x > 0) for v in columns.values()
             if np.any(np.asarray(v) > 0)),
            default=1e-12,
        )
        lo = max(lo, floor)

    def pos(x: float) -> int:
        """Map a value to a column of the strip (optionally log-scaled)."""
        if hi == lo:
            return 0
        if log:
            x = max(x, lo)
            frac = (np.log10(x) - np.log10(lo)) / (np.log10(hi) - np.log10(lo))
        else:
            frac = (x - lo) / (hi - lo)
        return int(round(frac * (width - 1)))

    name_w = max(len(n) for n in stats)
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'':{name_w}s}  {format_value(lo):>10s} {'':{width - 22}s}"
        f"{format_value(hi):>10s}  (min/q1/med/q3/max)"
    )
    for name, s in stats.items():
        strip = [" "] * width
        a, b = pos(s["min"]), pos(s["max"])
        for i in range(a, b + 1):
            strip[i] = "-"
        q1, q3 = pos(s["q1"]), pos(s["q3"])
        for i in range(q1, q3 + 1):
            strip[i] = "="
        strip[a] = strip[b] = "|"
        strip[pos(s["median"])] = "#"
        summary = "/".join(
            format_value(s[k]) for k in ("min", "q1", "median", "q3", "max")
        )
        lines.append(f"{name:{name_w}s}  [{''.join(strip)}]  {summary}")
    return "\n".join(lines)


def write_csv(path, headers: Sequence[str], rows: Sequence[Sequence]) -> Path:
    """Dump rows to CSV (for external plotting of the figure data)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return path
