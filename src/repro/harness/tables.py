"""Drivers regenerating the paper's Tables 1-8.

Each function returns ``(headers, rows)`` ready for
:func:`repro.harness.report.render_table` / :func:`write_csv`, so the
benchmark harness can both print the table and archive it.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro import obs, store
from repro.parallel.failures import TaskFailure
from repro.compressors import (
    Apax,
    Fpzip,
    Grib2Jpeg2000,
    Isabela,
    NetCDF4Zlib,
    get_variant,
    paper_variants,
)
from repro.harness.experiments import ExperimentContext
from repro.hybrid.selector import build_all_hybrids
from repro.metrics.average import nrmse
from repro.metrics.characterize import characterize
from repro.metrics.pointwise import normalized_max_error
from repro.pvt.acceptance import VariableContext, evaluate_variable

__all__ = [
    "table1_properties",
    "table2_characteristics",
    "table3_nrmse",
    "table4_enmax",
    "table5_timings",
    "table6_passes",
    "table7_hybrid_summary",
    "table8_hybrid_composition",
]


def _plain(cell):
    """JSON-ready cell: numpy scalars to Python, everything else as-is."""
    if isinstance(cell, np.generic):
        return cell.item()
    return cell


def _cached_table(stage, ctx, build, **params):
    """Memoize one table's ``(headers, rows)`` as a ``json`` artifact.

    The key folds in the context's scale config plus the driver's own
    parameters; rows pass through :func:`_plain` so the cold result is
    byte-identical to a warm read.  With no active store this is just
    ``build()``.
    """
    if store.get_store() is None:
        try:
            return build()
        except store.SkipStore as skip:
            return skip.value
    key = store.artifact_key(stage, config=ctx.config, **params)

    def compute():
        try:
            return _pack_table(build())
        except store.SkipStore as skip:
            # Partial table (some parallel tasks failed): deliver it to
            # the caller but keep it out of the cache.
            raise store.SkipStore(_pack_table(skip.value)) from None

    packed = store.cached(key, compute, kind="json", stage=stage)
    return packed["headers"], packed["rows"]


def _pack_table(table):
    headers, rows = table
    return {
        "headers": list(headers),
        "rows": [[_plain(cell) for cell in row] for row in rows],
    }


def table1_properties():
    """Table 1: the algorithm property matrix."""
    headers = [
        "Method", "lossless mode", "special values", "freely avail.",
        "fixed quality", "fixed CR", "32- & 64-bit",
    ]
    rows = []
    for cls in (Grib2Jpeg2000, Apax, Fpzip, Isabela):
        row = cls.properties().as_row()
        rows.append([row[h] for h in headers])
    return headers, rows


def table2_characteristics(ctx: ExperimentContext):
    """Table 2: characteristics (and lossless CR) of the featured datasets."""
    return _cached_table(
        "harness.table2", ctx, lambda: _table2_impl(ctx)
    )


def _table2_impl(ctx: ExperimentContext):
    headers = ["Variable", "units", "x_min", "x_max", "mean", "std", "CR"]
    rows = []
    for name in ctx.featured:
        spec = ctx.ensemble.spec(name)
        field = ctx.member_field(name)
        c = characterize(field, with_lossless_cr=True)
        rows.append(
            [name, spec.units, c.x_min, c.x_max, c.mean, c.std,
             c.lossless_cr]
        )
    return headers, rows


def _per_variant_metric(ctx: ExperimentContext, metric):
    headers = ["Comp. Method"] + [
        f"{name}" for name in ctx.featured
    ]
    rows = []
    for variant in paper_variants():
        codec = get_variant(variant)
        cells = [variant]
        for name in ctx.featured:
            field = ctx.member_field(name)
            outcome = codec.roundtrip(field)
            value = metric(field, outcome.reconstructed)
            cells.append(f"{value:.1e} ({outcome.cr:.2f})")
        rows.append(cells)
    return headers, rows


def table3_nrmse(ctx: ExperimentContext):
    """Table 3: NRMSE (and CR) for every variant on the featured variables."""
    return _cached_table(
        "harness.table3", ctx, lambda: _per_variant_metric(ctx, nrmse)
    )


def table4_enmax(ctx: ExperimentContext):
    """Table 4: e_nmax (and CR) for every variant on the featured variables."""
    return _cached_table(
        "harness.table4", ctx,
        lambda: _per_variant_metric(ctx, normalized_max_error),
    )


def table5_timings(ctx: ExperimentContext, repeats: int = 3):
    """Table 5: compression/reconstruction wall-clock and CR for U, FSDSC.

    Timings come from the ``repro.obs`` spans the codecs already emit
    (``compressors.compress`` / ``compressors.decompress``): each
    (variant, variable) cell runs ``repeats`` warm round trips into a
    private aggregator and reads back the minimum span duration.  (The
    pytest-benchmark variant in ``benchmarks/`` gives calibrated timings;
    this driver produces the full table in one call.)

    With an active store a warm rerun serves the *recorded* timings of
    the cold run (the warm-run speedup demonstrated by
    ``benchmarks/bench_store_warm.py``); clear or disable the store for
    fresh wall-clock numbers.
    """
    return _cached_table(
        "harness.table5", ctx, lambda: _table5_impl(ctx, repeats),
        repeats=repeats, variants=list(paper_variants()),
    )


def _table5_impl(ctx: ExperimentContext, repeats: int):
    headers = []
    for name in ("U", "FSDSC"):
        headers += [f"{name} comp. (s)", f"{name} reconst. (s)", f"{name} CR"]
    headers = ["Comp. Method"] + headers
    rows = []
    for variant in paper_variants():
        codec = get_variant(variant)
        cells = [variant]
        for name in ("U", "FSDSC"):
            field = ctx.member_field(name)
            blob = codec.compress(field)  # warm imports/caches, untraced
            agg = obs.Aggregator()
            with obs.tracing(sinks=[agg]):
                for _ in range(repeats):
                    blob = codec.compress(field)
                    codec.decompress(blob)
            comp = agg.codec_stats("compressors.compress", variant)
            rec = agg.codec_stats("compressors.decompress", variant)
            cells += [comp.min, rec.min, len(blob) / field.nbytes]
        rows.append(cells)
    return headers, rows


def table6_passes(
    ctx: ExperimentContext,
    run_bias: bool = True,
    variants=None,
    workers: int = 0,
):
    """Table 6: number of passes (out of all variables) per method/test.

    The sweep iterates variables in the outer loop so each variable's
    ensemble statistics (the expensive part) are computed once and shared
    by all nine variants; ``workers > 1`` distributes variables over
    processes.
    """
    variants = (
        list(variants) if variants is not None else list(paper_variants())
    )
    return _cached_table(
        "harness.table6", ctx,
        lambda: _table6_impl(ctx, run_bias, variants, workers),
        run_bias=run_bias, variants=variants,
    )


def _table6_impl(ctx, run_bias, variants, workers):
    headers = ["Comp. Method", "rho", "RMSZ ens.", "E_nmax ens.", "bias",
               "all", "n_vars"]
    names = [spec.name for spec in ctx.ensemble.catalog]
    members = tuple(int(m) for m in ctx.test_members)

    failures = []
    n_evaluated = len(names)
    if workers and workers > 1:
        from repro.parallel.executor import parallel_map
        from repro.parallel.partition import partition_work

        chunks = partition_work(names, workers * 2)
        args = [
            (ctx.config, chunk, tuple(variants), members, run_bias,
             store.current_root())
            for chunk in chunks
        ]
        result = parallel_map(_variant_passes_for_names, args,
                              workers=workers, on_failure="collect")
        per_variant = {v: np.zeros(5, dtype=int) for v in variants}
        n_evaluated = 0
        for chunk, partial in zip(chunks, result):
            if isinstance(partial, TaskFailure):
                continue  # this chunk's variables drop out of the tallies
            n_evaluated += len(chunk)
            for v, counts in partial.items():
                per_variant[v] += counts
        failures = result.failures
    else:
        per_variant = _passes_over_names(
            ctx.ensemble, names, variants, members, run_bias
        )

    rows = []
    for variant in variants:
        c = per_variant[variant]
        rows.append(
            [variant, int(c[0]), int(c[1]), int(c[2]),
             int(c[3]) if run_bias else None, int(c[4]), n_evaluated]
        )
    if failures:
        # Degraded run: report the partial table (n_vars says how
        # partial) but never let it masquerade as the cached full one.
        warnings.warn(
            f"table6 evaluated {n_evaluated}/{len(names)} variables; "
            + "; ".join(str(f) for f in failures),
            RuntimeWarning, stacklevel=2,
        )
        raise store.SkipStore((headers, rows))
    return headers, rows


def _passes_over_names(ensemble, names, variants, members, run_bias):
    """Count per-variant test passes over ``names`` (variable-outer)."""
    per_variant = {v: np.zeros(5, dtype=int) for v in variants}
    for name in names:
        fields = ensemble.ensemble_field(name)
        context = VariableContext.from_ensemble(fields)
        for variant in variants:
            verdict = evaluate_variable(
                fields, get_variant(variant), members, variable=name,
                run_bias=run_bias, context=context,
            )
            per_variant[variant] += [
                verdict.rho.passed,
                verdict.rmsz.passed,
                verdict.enmax.passed,
                verdict.bias.passed if verdict.bias else True,
                verdict.all_passed,
            ]
    return per_variant


def _variant_passes_for_names(args):
    """Worker entry: counts for a chunk of variables across all variants."""
    config, names, variants, members, run_bias, store_root = args
    from repro.pvt.tool import _ensemble_for_config

    store.adopt_root(store_root)
    ensemble = _ensemble_for_config(config)
    return _passes_over_names(ensemble, names, variants, members, run_bias)


def table7_hybrid_summary(ctx: ExperimentContext, run_bias: bool = True,
                          extended_apax: bool = False,
                          include_modern: bool = False):
    """Table 7: per-family hybrid statistics plus the NC column.

    ``include_modern=True`` appends the post-paper SZ, BitRound, and
    mixed SZ+BR hybrid columns between APAX and NC
    (docs/compressors.md).
    """
    hybrids = build_all_hybrids(
        ctx.ensemble, run_bias=run_bias, extended_apax=extended_apax,
        include_modern=include_modern,
    )
    order = ["GRIB2", "ISABELA", "fpzip", "APAX", "NetCDF-4"]
    labels = [
        ("avg_cr", "avg. CR"), ("best_cr", "best CR"),
        ("worst_cr", "worst CR"), ("avg_rho", "avg. rho"),
        ("avg_nrmse", "avg. nrmse"), ("avg_enmax", "avg. e_nmax"),
    ]
    if include_modern:
        order[4:4] = ["SZ", "BitRound", "SZ+BR"]
        # The volume-weighted ratio only joins the extended table: the
        # paper's Table 7 reports the unweighted per-variable average.
        labels.insert(1, ("total_cr", "total CR"))
    headers = ["statistic"] + [f if f != "NetCDF-4" else "NC" for f in order]
    stats = {f: hybrids[f].summary() for f in order}
    rows = []
    for key, label in labels:
        rows.append([label] + [stats[f][key] for f in order])
    return headers, rows, hybrids


def table8_hybrid_composition(hybrids):
    """Table 8: number of variables per variant in each hybrid method."""
    headers = ["Method", "Variant", "Number of Variables"]
    rows = []
    order = ("GRIB2", "ISABELA", "fpzip", "APAX", "SZ", "BitRound",
             "SZ+BR")
    for family in (f for f in order if f in hybrids):
        comp = hybrids[family].composition()
        for variant, count in sorted(
            comp.items(), key=lambda kv: -kv[1]
        ):
            rows.append([family, variant, count])
    return headers, rows
