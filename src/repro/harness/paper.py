"""The paper's published numbers, as data.

Encodes Tables 2-8 of Baker et al. (HPDC 2014) so benchmarks and
EXPERIMENTS.md can print paper-vs-measured side by side and check *shape*
agreement programmatically (orderings, pass/fail patterns, crossovers) —
absolute values are not expected to match, since the substrate is a
synthetic scale model rather than CESM on NCAR hardware.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "TABLE2",
    "TABLE3_NRMSE",
    "TABLE4_ENMAX",
    "TABLE6",
    "TABLE7",
    "TABLE8",
    "VARIANT_ORDER",
    "shape_agreement",
]

#: Row order of Tables 3-6 / Figures 1-4.
VARIANT_ORDER = (
    "GRIB2", "APAX-2", "APAX-4", "APAX-5", "fpzip-24", "fpzip-16",
    "ISA-0.1", "ISA-0.5", "ISA-1.0",
)

#: Table 2 — characteristics of the featured datasets:
#: variable -> (units, x_min, x_max, mean, std, lossless CR).
TABLE2 = {
    "U": ("m/s", -2.56e1, 5.45e1, 6.39e0, 1.22e1, 0.75),
    "FSDSC": ("W/m2", 1.24e2, 3.26e2, 2.43e2, 4.83e1, 0.66),
    "Z3": ("m", 4.12e1, 3.77e4, 1.12e4, 1.01e4, 0.58),
    "CCN3": ("#/cm3", 3.37e-5, 1.24e3, 2.66e1, 5.57e1, 0.71),
}

#: Table 3 — NRMSE (and CR) per variant x variable:
#: variant -> {variable: (nrmse, cr)}.
TABLE3_NRMSE = {
    "GRIB2":    {"U": (3.6e-4, .10), "FSDSC": (1.4e-4, .22), "Z3": (7.8e-8, .32), "CCN3": (2.3e-8, .37)},
    "APAX-2":   {"U": (5.8e-7, .50), "FSDSC": (8.3e-7, .50), "Z3": (7.0e-8, .50), "CCN3": (1.6e-7, .50)},
    "APAX-4":   {"U": (1.4e-4, .25), "FSDSC": (2.1e-4, .26), "Z3": (2.0e-5, .25), "CCN3": (4.1e-5, .25)},
    "APAX-5":   {"U": (4.3e-4, .20), "FSDSC": (5.4e-4, .21), "Z3": (5.1e-5, .19), "CCN3": (9.9e-5, .20)},
    "fpzip-24": {"U": (2.2e-6, .39), "FSDSC": (1.8e-5, .34), "Z3": (5.1e-6, .19), "CCN3": (6.5e-7, .36)},
    "fpzip-16": {"U": (5.7e-4, .15), "FSDSC": (4.6e-3, .10), "Z3": (1.2e-3, .04), "CCN3": (1.7e-4, .12)},
    "ISA-0.1":  {"U": (8.7e-5, .57), "FSDSC": (4.1e-4, .37), "Z3": (3.8e-5, .39), "CCN3": (2.8e-5, .37)},
    "ISA-0.5":  {"U": (2.7e-4, .44), "FSDSC": (9.1e-4, .36), "Z3": (9.8e-5, .37), "CCN3": (1.2e-4, .38)},
    "ISA-1.0":  {"U": (3.7e-4, .41), "FSDSC": (1.1e-3, .36), "Z3": (1.5e-4, .36), "CCN3": (2.0e-4, .37)},
}

#: Table 4 — e_nmax (and CR): variant -> {variable: (e_nmax, cr)}.
TABLE4_ENMAX = {
    "GRIB2":    {"U": (6.2e-4, .10), "FSDSC": (2.5e-4, .22), "Z3": (1.6e-7, .32), "CCN3": (4.9e-8, .37)},
    "APAX-2":   {"U": (3.3e-6, .50), "FSDSC": (4.7e-6, .50), "Z3": (3.3e-6, .50), "CCN3": (2.9e-6, .50)},
    "APAX-4":   {"U": (9.0e-4, .25), "FSDSC": (1.1e-3, .26), "Z3": (8.3e-4, .25), "CCN3": (7.5e-4, .25)},
    "APAX-5":   {"U": (2.7e-3, .20), "FSDSC": (2.7e-3, .21), "Z3": (3.1e-3, .19), "CCN3": (1.9e-3, .20)},
    "fpzip-24": {"U": (1.2e-5, .39), "FSDSC": (3.9e-5, .34), "Z3": (3.3e-6, .19), "CCN3": (2.4e-5, .36)},
    "fpzip-16": {"U": (3.1e-3, .15), "FSDSC": (9.9e-3, .10), "Z3": (6.8e-3, .04), "CCN3": (5.3e-3, .12)},
    "ISA-0.1":  {"U": (6.4e-4, .57), "FSDSC": (1.6e-3, .37), "Z3": (9.8e-4, .39), "CCN3": (8.7e-4, .37)},
    "ISA-0.5":  {"U": (2.9e-3, .44), "FSDSC": (7.6e-3, .36), "Z3": (4.9e-3, .37), "CCN3": (3.9e-3, .38)},
    "ISA-1.0":  {"U": (4.9e-3, .41), "FSDSC": (1.5e-2, .36), "Z3": (9.9e-3, .36), "CCN3": (7.9e-3, .37)},
}

#: Table 6 — passes out of 170: variant -> (rho, rmsz, enmax, bias, all).
TABLE6 = {
    "GRIB2":    (167, 163, 170, 124, 121),
    "APAX-2":   (170, 170, 170, 146, 146),
    "APAX-4":   (167, 163, 165, 126, 122),
    "APAX-5":   (130, 152, 160, 111, 85),
    "fpzip-24": (170, 164, 170, 167, 163),
    "fpzip-16": (122, 129, 138, 126, 113),
    "ISA-0.1":  (168, 160, 164, 160, 152),
    "ISA-0.5":  (140, 154, 145, 161, 123),
    "ISA-1.0":  (63, 154, 112, 161, 43),
}

#: Table 7 — hybrid statistics: family -> dict.
TABLE7 = {
    "GRIB2":   {"avg_cr": 0.37, "best_cr": 0.03, "worst_cr": 0.86,
                "avg_rho": 0.9999999, "avg_nrmse": 5.73e-5,
                "avg_enmax": 1.01e-4},
    "ISABELA": {"avg_cr": 0.42, "best_cr": 0.20, "worst_cr": 0.77,
                "avg_rho": 0.9999991, "avg_nrmse": 3.22e-4,
                "avg_enmax": 5.56e-3},
    "fpzip":   {"avg_cr": 0.18, "best_cr": 0.02, "worst_cr": 0.68,
                "avg_rho": 0.9999995, "avg_nrmse": 2.35e-4,
                "avg_enmax": 2.76e-3},
    "APAX":    {"avg_cr": 0.29, "best_cr": 0.06, "worst_cr": 0.80,
                "avg_rho": 0.9999991, "avg_nrmse": 2.61e-4,
                "avg_enmax": 1.83e-3},
    "NC":      {"avg_cr": 0.61, "best_cr": 0.07, "worst_cr": 0.86,
                "avg_rho": 1.0, "avg_nrmse": 0.0, "avg_enmax": 0.0},
}

#: Table 8 — hybrid composition: family -> {variant: n_variables}.
TABLE8 = {
    "GRIB2": {"GRIB2": 121, "NetCDF-4": 49},
    "ISABELA": {"ISA-1.0": 43, "ISA-0.5": 80, "ISA-0.1": 29,
                "NetCDF-4": 18},
    "fpzip": {"fpzip-16": 113, "fpzip-24": 50, "fpzip-32": 7},
    "APAX": {"APAX-5": 85, "APAX-4": 37, "APAX-2": 24, "NetCDF-4": 24},
}


def shape_agreement(paper: dict, measured: dict) -> float:
    """Fraction of pairwise orderings shared by paper and measured values.

    Both arguments map the same keys to scalars.  For every unordered key
    pair, score 1 when the two series order the pair the same way (ties
    count as agreement when both tie).  1.0 means perfect rank agreement
    (a Kendall-tau-like score mapped to [0, 1]).
    """
    keys = sorted(set(paper) & set(measured))
    if len(keys) < 2:
        raise ValueError("need at least two shared keys to compare shape")
    agree = total = 0
    for i, a in enumerate(keys):
        for b in keys[i + 1:]:
            total += 1
            pa = np.sign(paper[a] - paper[b])
            me = np.sign(measured[a] - measured[b])
            agree += pa == me
    return agree / total
