"""Experiment harness: one driver per table/figure of the paper.

:mod:`experiments` holds the shared :class:`ExperimentContext` (config +
ensemble + PVT, cached per scale); :mod:`tables` and :mod:`figures`
regenerate the paper's Tables 1-8 and the data series behind Figures 1-4;
:mod:`report` renders everything as aligned ASCII tables, box-plot
summaries, and CSV rows (no plotting libraries are available offline, so
figures are emitted as their underlying data).
"""

from repro.harness.experiments import ExperimentContext
from repro.harness.tables import (
    table1_properties,
    table2_characteristics,
    table3_nrmse,
    table4_enmax,
    table5_timings,
    table6_passes,
    table7_hybrid_summary,
    table8_hybrid_composition,
)
from repro.harness.figures import (
    figure1_error_boxplots,
    figure2_rmsz_ensemble,
    figure3_enmax_ensemble,
    figure4_bias,
)
from repro.harness.report import (
    render_table,
    boxplot_stats,
    render_boxplot,
    write_csv,
)

__all__ = [
    "ExperimentContext",
    "table1_properties",
    "table2_characteristics",
    "table3_nrmse",
    "table4_enmax",
    "table5_timings",
    "table6_passes",
    "table7_hybrid_summary",
    "table8_hybrid_composition",
    "figure1_error_boxplots",
    "figure2_rmsz_ensemble",
    "figure3_enmax_ensemble",
    "figure4_bias",
    "render_table",
    "boxplot_stats",
    "render_boxplot",
    "write_csv",
]
