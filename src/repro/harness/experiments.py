"""Shared experiment context: config + ensemble + PVT, cached per scale.

Every table/figure driver takes an :class:`ExperimentContext`.  Building
the ensemble is the expensive step (the dycore run plus field synthesis),
so contexts are cached process-wide by their configuration; the benchmark
suite and the examples share one context per scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs, store
from repro.config import ReproConfig, bench_scale, test_scale
from repro.model.ensemble import CAMEnsemble
from repro.model.variables import FEATURED
from repro.pvt.tool import CesmPvt

__all__ = ["ExperimentContext", "FEATURED_NAMES"]

#: The paper's four case-study variables, in its column order.
FEATURED_NAMES = ("U", "FSDSC", "Z3", "CCN3")

_CONTEXT_CACHE: dict = {}


@dataclass
class ExperimentContext:
    """Everything an experiment needs: config, ensemble, PVT, members."""

    config: ReproConfig
    ensemble: CAMEnsemble
    pvt: CesmPvt

    @classmethod
    def create(cls, config: ReproConfig) -> "ExperimentContext":
        """Build (or fetch the cached) context for ``config``.

        The in-process cache key is the same config fingerprint the
        artifact store hashes (``workers`` excluded), so "same context"
        here and "same artifacts" on disk agree by construction.
        """
        key = store.canonical_json(store.config_fingerprint(config))
        with obs.span("harness.context", ne=config.ne,
                      members=config.n_members) as sp:
            ctx = _CONTEXT_CACHE.get(key)
            sp.note(cache_hit=ctx is not None)
            if ctx is None:
                ensemble = CAMEnsemble(config)
                ctx = cls(
                    config=config,
                    ensemble=ensemble,
                    pvt=CesmPvt(ensemble),
                )
                _CONTEXT_CACHE[key] = ctx
                obs.counter("harness.members_built").add(config.n_members)
        return ctx

    @classmethod
    def bench(cls) -> "ExperimentContext":
        """The benchmark-scale context (env-tunable, defaults ne=8)."""
        return cls.create(bench_scale())

    @classmethod
    def test(cls) -> "ExperimentContext":
        """The small test-scale context."""
        return cls.create(test_scale())

    @property
    def test_members(self):
        """The 3 randomly selected PVT members."""
        return self.pvt.test_members

    @property
    def featured(self) -> tuple[str, ...]:
        """Featured variables present in this catalog (all, at any scale
        with the default catalog prefix)."""
        have = {spec.name for spec in self.ensemble.catalog}
        return tuple(n for n in FEATURED_NAMES if n in have)

    def member_field(self, variable: str, which: int = 0):
        """Field of the ``which``-th selected test member."""
        return self.ensemble.member_field(
            variable, int(self.test_members[which])
        )

    def member_chunks(self, variable: str, which: int = 0,
                      chunk_mb: float | None = None):
        """A test member's field as a chunk stream.

        The streaming front ends (``repro stream --variable``, the
        throughput benchmark) use this to run the chunked pipeline over
        real ensemble fields at the context's scale instead of purely
        synthetic data.
        """
        from repro.stream.chunks import iter_array_chunks

        return iter_array_chunks(self.member_field(variable, which),
                                 chunk_mb=chunk_mb)


# Re-export for callers that want spec details of the featured variables.
FEATURED_SPECS = FEATURED
