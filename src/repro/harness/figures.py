"""Drivers regenerating the data behind the paper's Figures 1-4.

Figures are returned as structured data (box-plot samples, histogram
distributions with markers, scatter points with confidence rectangles);
the benchmark harness renders them with
:func:`repro.harness.report.render_boxplot` / :func:`render_table` and can
archive them as CSV.
"""

from __future__ import annotations

import numpy as np

from repro.compressors import get_variant, paper_variants
from repro.harness.experiments import ExperimentContext
from repro.metrics.average import nrmse
from repro.metrics.pointwise import normalized_max_error
from repro.pvt.acceptance import VariableContext
from repro.pvt.bias import bias_regression
from repro.pvt.zscore import EnsembleStats

__all__ = [
    "figure1_error_boxplots",
    "figure2_rmsz_ensemble",
    "figure3_enmax_ensemble",
    "figure4_bias",
]


def figure1_error_boxplots(ctx: ExperimentContext, variants=None):
    """Figure 1: e_nmax (a) and NRMSE (b) over ALL variables, per variant.

    Returns ``{"enmax": {variant: values}, "nrmse": {variant: values}}``
    with one value per catalog variable.
    """
    variants = list(variants) if variants is not None else list(paper_variants())
    member = int(ctx.test_members[0])
    enmax_cols: dict[str, list[float]] = {v: [] for v in variants}
    nrmse_cols: dict[str, list[float]] = {v: [] for v in variants}
    for spec in ctx.ensemble.catalog:
        field = ctx.ensemble.member_field(spec.name, member)
        for variant in variants:
            codec = get_variant(variant)
            recon = codec.decompress(codec.compress(field))
            enmax_cols[variant].append(normalized_max_error(field, recon))
            nrmse_cols[variant].append(nrmse(field, recon))
    return {
        "enmax": {v: np.asarray(vals) for v, vals in enmax_cols.items()},
        "nrmse": {v: np.asarray(vals) for v, vals in nrmse_cols.items()},
    }


def figure2_rmsz_ensemble(ctx: ExperimentContext, variables=None,
                          variants=None):
    """Figure 2: RMSZ distributions with reconstructed-member markers.

    For each variable: the ensemble RMSZ distribution (histogram source),
    the original RMSZ of one test member (the black circle), and each
    variant's reconstructed RMSZ (the markers).
    """
    variables = list(variables) if variables is not None else list(ctx.featured)
    variants = list(variants) if variants is not None else list(paper_variants())
    member = int(ctx.test_members[0])
    out = {}
    for name in variables:
        fields = ctx.ensemble.ensemble_field(name)
        stats = EnsembleStats(fields)
        dist = stats.distribution()
        original = stats.member_rmsz(member)
        markers = {}
        for variant in variants:
            codec = get_variant(variant)
            recon = codec.decompress(codec.compress(fields[member]))
            markers[variant] = stats.rmsz(
                recon.astype(np.float64).reshape(-1), member
            )
        out[name] = {
            "distribution": dist,
            "original": original,
            "markers": markers,
        }
    return out


def figure3_enmax_ensemble(ctx: ExperimentContext, variables=None,
                           variants=None):
    """Figure 3: ensemble E_nmax box plots plus per-variant e_nmax markers."""
    variables = list(variables) if variables is not None else list(ctx.featured)
    variants = list(variants) if variants is not None else list(paper_variants())
    member = int(ctx.test_members[0])
    out = {}
    for name in variables:
        fields = ctx.ensemble.ensemble_field(name)
        context = VariableContext.from_ensemble(fields)
        markers = {}
        for variant in variants:
            codec = get_variant(variant)
            recon = codec.decompress(codec.compress(fields[member]))
            markers[variant] = normalized_max_error(fields[member], recon)
        out[name] = {
            "distribution": context.enmax_dist,
            "markers": markers,
        }
    return out


def figure4_bias(ctx: ExperimentContext, variables=None, variants=None):
    """Figure 4: slope-vs-intercept with 95% confidence rectangles.

    For each variable and variant: compress the whole ensemble, regress
    reconstructed RMSZ on original RMSZ, return the fit and rectangle.
    """
    variables = list(variables) if variables is not None else list(ctx.featured)
    variants = list(variants) if variants is not None else list(paper_variants())
    out = {}
    for name in variables:
        fields = ctx.ensemble.ensemble_field(name)
        stats = EnsembleStats(fields)
        rmsz_orig = stats.distribution()
        points = {}
        for variant in variants:
            codec = get_variant(variant)
            recon = np.empty_like(fields)
            for m in range(fields.shape[0]):
                recon[m] = codec.decompress(
                    codec.compress(np.ascontiguousarray(fields[m]))
                )
            rmsz_rec = EnsembleStats(recon).distribution()
            points[variant] = bias_regression(rmsz_orig, rmsz_rec)
        out[name] = points
    return out
