"""The paper's metrics as streaming folds over chunk streams.

Each fold consumes chunks via ``update`` and produces its batch
counterpart's answer from ``finalize`` — same special-value masking
(|x| >= 1e34 excluded), same degenerate-case errors, same constant-field
semantics — differing only by float-rounding of the merge order.
:class:`StreamingMoments` and :class:`StreamingError` also ``merge``
with partials computed elsewhere (worker processes); the RMSZ fold is
inherently positional (per-grid-point statistics) and consumes its
chunks in order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.characterize import DataCharacteristics, valid_mask
from repro.metrics.streaming import PairedMoments, RunningMoments

__all__ = [
    "ErrorSummary",
    "StreamingError",
    "StreamingMoments",
    "StreamingRMSZ",
]

_NO_VALID = "dataset contains no valid (non-special) values"


class StreamingMoments:
    """Section 4.1 characterization (Table 2 row) as a fold.

    ``finalize`` returns the same :class:`DataCharacteristics` that
    :func:`repro.metrics.characterize.characterize` computes — minus the
    lossless CR, which needs the bytes, not the statistics.  Chunks with
    no valid points are fine mid-stream; only an entirely-special
    dataset errors, and only at ``finalize``.
    """

    def __init__(self) -> None:
        self.moments = RunningMoments()
        self.n_special = 0

    def update(self, chunk: np.ndarray) -> None:
        """Fold one chunk of original data."""
        chunk = np.asarray(chunk)
        mask = valid_mask(chunk)
        values = chunk[mask]
        self.n_special += int(chunk.size - values.size)
        self.moments.update(values)

    def merge(self, other: "StreamingMoments") -> None:
        """Fold a partial computed over other chunks of the same data."""
        self.moments.merge(other.moments)
        self.n_special += other.n_special

    def finalize(self) -> DataCharacteristics:
        """The characterization of everything folded so far."""
        if self.moments.n == 0:
            raise ValueError(_NO_VALID)
        return DataCharacteristics(
            x_min=self.moments.minimum,
            x_max=self.moments.maximum,
            mean=self.moments.mean,
            std=self.moments.std,
            n_valid=self.moments.n,
            n_special=self.n_special,
            lossless_cr=None,
        )


@dataclass(frozen=True)
class ErrorSummary:
    """Finalized error metrics of one original/reconstruction stream.

    ``nrmse`` and ``e_nmax`` are properties because their constant-field
    behaviour matches the batch metrics: a constant original (R_X = 0)
    yields 0.0 when reconstructed exactly and raises
    :class:`ZeroDivisionError` otherwise.
    """

    n_valid: int
    rmse: float
    e_max: float
    r_x: float
    pearson: float

    def _normalized(self, err: float) -> float:
        if self.r_x == 0.0:
            if err == 0.0:
                return 0.0
            raise ZeroDivisionError(
                "R_X is zero (constant field) but the reconstruction differs"
            )
        return err / self.r_x

    @property
    def nrmse(self) -> float:
        """Eq. (4): RMSE / R_X."""
        return self._normalized(self.rmse)

    @property
    def e_nmax(self) -> float:
        """Eq. (2): max|e_i| / R_X."""
        return self._normalized(self.e_max)


class StreamingError:
    """Eqs. 2-5 (e_max, RMSE, NRMSE, Pearson) as one paired fold.

    Valid-point masking follows the batch metrics: the mask comes from
    the *original* chunk, and both sides are reduced over those points.
    """

    def __init__(self) -> None:
        self.pair = PairedMoments()
        self.sum_e2 = 0.0
        self.e_max = 0.0
        self.exact = True

    def update(self, original: np.ndarray,
               reconstructed: np.ndarray) -> None:
        """Fold one original chunk and its reconstruction."""
        original = np.asarray(original, dtype=np.float64)
        reconstructed = np.asarray(reconstructed, dtype=np.float64)
        if original.shape != reconstructed.shape:
            raise ValueError(
                f"shape mismatch: {original.shape} vs {reconstructed.shape}"
            )
        mask = valid_mask(original)
        x = original[mask]
        y = reconstructed[mask]
        if x.size == 0:
            return
        if self.exact and not np.array_equal(x, y):
            self.exact = False
        err = x - y
        self.sum_e2 += float((err**2).sum())
        self.e_max = max(self.e_max, float(np.abs(err).max()))
        self.pair.update(x, y)

    def merge(self, other: "StreamingError") -> None:
        """Fold a partial computed over other chunks of the same pair."""
        self.pair.merge(other.pair)
        self.sum_e2 += other.sum_e2
        self.e_max = max(self.e_max, other.e_max)
        self.exact = self.exact and other.exact

    def finalize(self) -> ErrorSummary:
        """The error metrics of everything folded so far."""
        n = self.pair.n
        if n == 0:
            raise ValueError(_NO_VALID)
        # Batch pearson returns 1.0 for bit-exact reconstruction even of
        # constant fields, where the covariance formula is 0/0.
        rho = 1.0 if self.exact else self.pair.pearson
        return ErrorSummary(
            n_valid=n,
            rmse=float(np.sqrt(self.sum_e2 / n)),
            e_max=self.e_max,
            r_x=self.pair.x.maximum - self.pair.x.minimum,
            pearson=rho,
        )


class StreamingRMSZ:
    """Eq. (7) RMSZ against stored per-point statistics, as a fold.

    Built from a PVT summary's per-grid-point ``mean``/``std`` (indexed
    over valid points) and full-length ``valid`` mask — exactly the
    arrays :class:`repro.pvt.summary.VariableSummary` stores.  Chunks
    must arrive *in order*: the fold advances a cursor over the
    flattened field, standardizing each chunk against its slice of the
    statistics.  ``finalize`` checks the stream covered the whole field,
    then returns the same score as
    :meth:`~repro.pvt.summary.VariableSummary.rmsz_of`.
    """

    def __init__(self, mean: np.ndarray, std: np.ndarray,
                 valid: np.ndarray) -> None:
        self.mean = np.asarray(mean, dtype=np.float64).reshape(-1)
        self.std = np.asarray(std, dtype=np.float64).reshape(-1)
        self.valid = np.asarray(valid, dtype=bool).reshape(-1)
        if self.mean.shape != self.std.shape:
            raise ValueError(
                f"mean has {self.mean.size} points, std has {self.std.size}"
            )
        if int(self.valid.sum()) != self.mean.size:
            raise ValueError(
                f"valid mask selects {int(self.valid.sum())} points, "
                f"statistics cover {self.mean.size}"
            )
        self._pos = 0    # cursor over the flattened full field
        self._vpos = 0   # cursor over the valid-compressed statistics
        self._z2 = 0.0
        self._n = 0
        self._sum_valid = 0.0
        self._n_valid = 0

    def update(self, chunk: np.ndarray) -> None:
        """Fold the next in-order chunk of the (flattened) field."""
        flat = np.asarray(chunk, dtype=np.float64).reshape(-1)
        stop = self._pos + flat.size
        if stop > self.valid.size:
            raise ValueError(
                f"stream is longer than the field: {stop} > "
                f"{self.valid.size} points"
            )
        values = flat[self.valid[self._pos:stop]]
        self._pos = stop
        lo = self._vpos
        self._vpos += values.size
        if values.size == 0:
            return
        self._sum_valid += float(values.sum())
        self._n_valid += values.size
        std = self.std[lo:self._vpos]
        ok = std > 0
        if not ok.any():
            return
        z = (values[ok] - self.mean[lo:self._vpos][ok]) / std[ok]
        self._z2 += float((z**2).sum())
        self._n += int(ok.sum())

    @property
    def mean_valid(self) -> float:
        """Mean of the valid points seen so far (the PVT mean test)."""
        if self._n_valid == 0:
            raise ValueError(_NO_VALID)
        return self._sum_valid / self._n_valid

    def finalize(self) -> float:
        """The RMSZ score; requires the stream to have covered the field."""
        if self._pos != self.valid.size:
            raise ValueError(
                f"stream covered {self._pos} of {self.valid.size} points"
            )
        if self._n == 0:
            raise ValueError("degenerate summary spread")
        return float(np.sqrt(self._z2 / self._n))
