"""Chunk sources: arrays, NCH variables, and synthetic streams.

A *chunk stream* is any iterable of numpy arrays that are consecutive
first-axis blocks of one logical dataset.  The folds and pipeline in
this package consume chunk streams without ever concatenating them, so
the dataset behind a stream may be far larger than memory; every source
here guarantees that at most one chunk is materialized at a time.

Chunk size is expressed in MiB (``chunk_mb``) and translated to a row
count per block with :func:`chunk_rows`; ``REPRO_STREAM_CHUNK_MB``
overrides the default block size process-wide.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro import config
from repro.config import FILL_VALUE
from repro.ncio.format import HistoryFile

__all__ = [
    "DEFAULT_CHUNK_MB",
    "chunk_rows",
    "default_chunk_mb",
    "iter_array_chunks",
    "iter_file_chunks",
    "synthetic_chunks",
]

#: Default block size.  Big enough that per-chunk codec overhead is
#: negligible, small enough that a handful of in-flight blocks stay
#: comfortably inside any laptop's RAM.
DEFAULT_CHUNK_MB = 8.0


def default_chunk_mb() -> float:
    """The process-wide block size: ``REPRO_STREAM_CHUNK_MB`` or 8 MiB."""
    value = config.env_float_opt("REPRO_STREAM_CHUNK_MB")
    if value is None or value <= 0:
        return DEFAULT_CHUNK_MB
    return value


def chunk_rows(shape: tuple[int, ...], itemsize: int,
               chunk_mb: float | None = None) -> int:
    """First-axis rows per block so one block is about ``chunk_mb`` MiB."""
    if chunk_mb is None:
        chunk_mb = default_chunk_mb()
    if chunk_mb <= 0:
        raise ValueError(f"chunk_mb must be positive, got {chunk_mb}")
    row_bytes = itemsize * int(np.prod(shape[1:], dtype=np.int64))
    return max(1, int(chunk_mb * 2**20) // max(row_bytes, 1))


def iter_array_chunks(data: np.ndarray,
                      chunk_mb: float | None = None) -> Iterator[np.ndarray]:
    """Yield an in-memory array as consecutive first-axis blocks (views).

    The memory-bound sources are the file and synthetic streams; this
    adapter exists so batch-shaped callers can feed the same folds.
    """
    data = np.asarray(data)
    if data.ndim == 0:
        raise ValueError("cannot chunk a scalar")
    rows = chunk_rows(data.shape, data.dtype.itemsize, chunk_mb)
    for start in range(0, data.shape[0], rows):
        yield data[start:start + rows]


def iter_file_chunks(path, name: str, chunk_mb: float | None = None,
                     codec=None) -> Iterator[np.ndarray]:
    """Stream an NCH variable as blocks of decoded first-axis slices.

    One block is decoded at a time directly from the chunk table, so
    reading a variable much larger than RAM needs only block-sized
    memory.  ``codec`` overrides the decoder for lossy-coded variables
    (the footer names the writing variant).
    """
    with HistoryFile(path) as fh:
        info = fh.info(name)
        rows = chunk_rows(info.shape, np.dtype(info.dtype).itemsize,
                          chunk_mb)
        yield from fh.iter_chunks(name, rows=rows, codec=codec)


def synthetic_chunks(total_mb: float, chunk_mb: float | None = None,
                     ncol: int = 2048, seed: int = 20140623,
                     fill_fraction: float = 0.0) -> Iterator[np.ndarray]:
    """Generate a deterministic CAM-like chunk stream of ``total_mb`` MiB.

    Each block is float64 ``(rows, ncol)``: a smooth zonal harmonic
    drifting over the row (pseudo-time) axis plus unit Gaussian noise —
    compressible but not trivially so, like a temperature field.
    ``fill_fraction > 0`` scatters CESM fill values to exercise the
    valid-point masking.  Randomness is seeded per fixed 64-row stripe
    of the *absolute* row index, so the stream's values are identical
    for every ``chunk_mb`` — and the whole dataset never exists in
    memory at once.
    """
    if total_mb <= 0:
        raise ValueError(f"total_mb must be positive, got {total_mb}")
    stripe = 64
    row_bytes = 8 * ncol
    total_rows = max(1, int(total_mb * 2**20) // row_bytes)
    rows = chunk_rows((total_rows, ncol), 8, chunk_mb)
    x = np.linspace(0.0, 2.0 * np.pi, ncol)
    zonal = 30.0 * np.sin(3.0 * x) + 5.0 * np.cos(11.0 * x)
    start = 0
    while start < total_rows:
        stop = min(start + rows, total_rows)
        block = np.empty((stop - start, ncol), dtype=np.float64)
        t = np.arange(start, stop, dtype=np.float64)[:, None]
        block[...] = 260.0 + zonal[None, :] * np.cos(0.01 * t)
        row = start
        while row < stop:
            s0 = (row // stripe) * stripe
            s1 = min(s0 + stripe, total_rows)
            rng = np.random.default_rng((seed, s0))
            noise = rng.standard_normal((s1 - s0, ncol))
            take = slice(row - s0, min(stop, s1) - s0)
            out = slice(row - start, row - start + take.stop - take.start)
            block[out] += noise[take]
            if fill_fraction > 0.0:
                mask = rng.random((s1 - s0, ncol)) < fill_fraction
                block[out][mask[take]] = FILL_VALUE
            row = s0 + take.stop
        yield block
        start = stop
