"""Streaming out-of-core compression pipeline.

The paper's methodology — compress, decompress, error metrics, RMSZ —
is defined over whole variables, but a whole variable at paper scale (or
an SDRBench-style multi-GB field) need not fit in memory.  This package
re-expresses the methodology as *streaming folds* over chunks:

- :mod:`chunks` — chunk sources: slice an in-memory array, read an NCH
  variable block-by-block (:meth:`repro.ncio.format.HistoryFile.
  iter_chunks`), or generate a deterministic CAM-like synthetic stream
  of any size without ever materializing it;
- :mod:`folds` — the methodology as folds: :class:`StreamingMoments`
  (Section 4.1 characterization), :class:`StreamingError` (e_max,
  RMSE/NRMSE, Pearson — eqs. 2-5), and :class:`StreamingRMSZ` (eq. 7
  against stored ensemble statistics), each matching its batch metric
  up to float rounding;
- :mod:`pipeline` — :func:`stream_roundtrip` drives codec round trips
  chunk-at-a-time, serially (peak RSS bounded by the chunk size) or
  across worker processes with shared-memory array transport
  (``Executor(shm=True)``), and folds the partials into one
  :class:`StreamOutcome`.

``repro stream`` is the CLI front end and
``benchmarks/bench_stream_throughput.py`` the regression gate; see
``docs/streaming.md`` for the chunk model and RSS guarantees.
"""

from repro.stream.chunks import (
    DEFAULT_CHUNK_MB,
    chunk_rows,
    iter_array_chunks,
    iter_file_chunks,
    synthetic_chunks,
)
from repro.stream.folds import (
    ErrorSummary,
    StreamingError,
    StreamingMoments,
    StreamingRMSZ,
)
from repro.stream.pipeline import StreamOutcome, stream_roundtrip

__all__ = [
    "DEFAULT_CHUNK_MB",
    "ErrorSummary",
    "StreamOutcome",
    "StreamingError",
    "StreamingMoments",
    "StreamingRMSZ",
    "chunk_rows",
    "iter_array_chunks",
    "iter_file_chunks",
    "stream_roundtrip",
    "synthetic_chunks",
]
