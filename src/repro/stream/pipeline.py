"""Chunk-at-a-time codec round trips with bounded peak RSS.

:func:`stream_roundtrip` drives one codec over a chunk stream:
compress, decompress, and fold — characterization of the original,
error metrics of the reconstruction, optionally RMSZ against stored
ensemble statistics.  Serially, peak memory is a small constant
multiple of one chunk regardless of how many chunks flow through
(provable with ``REPRO_TRACE_MEM``; the throughput benchmark asserts
it).  With ``workers > 1`` chunks round-trip in worker processes, the
arrays crossing the process boundary via shared-memory descriptors
(:mod:`repro.parallel.shm`) rather than pickle, and only fold partials
— a few dozen floats per chunk — travel back.

Under ``REPRO_TRACE=1`` a run is a ``stream.roundtrip`` span with
``stream.chunks`` / ``stream.bytes_in`` / ``stream.bytes_out``
counters; each chunk's metric fold is a ``stream.fold`` span whose
duration also feeds the ``stream.chunk_fold_s`` histogram (p50/p95 in
``repro stats``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro import obs
from repro.compressors.base import Compressor
from repro.metrics.characterize import DataCharacteristics
from repro.parallel.executor import Executor
from repro.stream.folds import (
    ErrorSummary,
    StreamingError,
    StreamingMoments,
    StreamingRMSZ,
)

__all__ = ["StreamOutcome", "stream_roundtrip"]

_CHUNKS = obs.counter("stream.chunks")
_BYTES_IN = obs.counter("stream.bytes_in")
_BYTES_OUT = obs.counter("stream.bytes_out")
_FOLD_H = obs.histogram("stream.chunk_fold_s")


@dataclass(frozen=True)
class StreamOutcome:
    """Everything one streaming round trip learned about a codec."""

    variant: str
    n_chunks: int
    n_points: int
    bytes_in: int
    bytes_out: int
    characteristics: DataCharacteristics
    errors: ErrorSummary
    rmsz: float | None = None           #: reconstruction, if stats given
    rmsz_original: float | None = None  #: original, for eq. (8)'s delta

    @property
    def cr(self) -> float:
        """Compression ratio, eq. (1) convention: compressed/original."""
        return self.bytes_out / self.bytes_in if self.bytes_in else 0.0


def _roundtrip_chunk(args: tuple) -> tuple:
    """Worker task: round-trip one chunk, return small fold partials."""
    codec, chunk = args
    blob = codec.compress(chunk)
    recon = codec.decompress(blob).reshape(chunk.shape)
    moments = StreamingMoments()
    moments.update(chunk)
    errors = StreamingError()
    errors.update(chunk, recon)
    return moments, errors, int(chunk.nbytes), len(blob), int(chunk.size)


def _windows(chunks: Iterable[np.ndarray],
             size: int) -> Iterator[list[np.ndarray]]:
    window: list[np.ndarray] = []
    for chunk in chunks:
        window.append(np.asarray(chunk))
        if len(window) >= size:
            yield window
            window = []
    if window:
        yield window


def stream_roundtrip(
    codec: Compressor,
    chunks: Iterable[np.ndarray],
    *,
    workers: int = 0,
    rmsz_stats: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> StreamOutcome:
    """Round-trip a chunk stream through ``codec`` and fold the metrics.

    Parameters
    ----------
    codec:
        Any registered :class:`~repro.compressors.base.Compressor`.
    chunks:
        A chunk stream (see :mod:`repro.stream.chunks`); consumed once.
    workers:
        ``<= 1``: chunks round-trip inline, one at a time — the
        bounded-RSS guarantee.  ``> 1``: windows of ``2 * workers``
        chunks round-trip concurrently in worker processes over the
        shared-memory transport; peak RSS grows with the window, never
        with the stream.
    rmsz_stats:
        Optional ``(mean, std, valid)`` per-grid-point ensemble
        statistics (a :class:`~repro.pvt.summary.VariableSummary`'s
        arrays).  The stream must then cover exactly that field, in
        order, and only the serial path supports it (the fold is
        positional).  The outcome gains eq. (7) RMSZ scores for both
        reconstruction and original.
    """
    serial = workers is None or workers <= 1
    if rmsz_stats is not None and not serial:
        raise ValueError(
            "rmsz_stats needs in-order chunks: use workers<=1 "
            "(the RMSZ fold is positional)"
        )
    moments = StreamingMoments()
    errors = StreamingError()
    rmsz_recon = rmsz_orig = None
    if rmsz_stats is not None:
        rmsz_recon = StreamingRMSZ(*rmsz_stats)
        rmsz_orig = StreamingRMSZ(*rmsz_stats)
    n_chunks = n_points = bytes_in = bytes_out = 0

    with obs.span("stream.roundtrip", variant=codec.variant,
                  workers=0 if serial else workers) as sp:
        if serial:
            for chunk, recon, blob_len in codec.roundtrip_chunks(chunks):
                with obs.span("stream.fold") as fold_sp:
                    moments.update(chunk)
                    errors.update(chunk, recon)
                    if rmsz_recon is not None:
                        rmsz_recon.update(recon)
                        rmsz_orig.update(chunk)
                _FOLD_H.observe(fold_sp.duration)
                n_chunks += 1
                n_points += int(chunk.size)
                bytes_in += int(chunk.nbytes)
                bytes_out += blob_len
                _CHUNKS.add(1)
                _BYTES_IN.add(int(chunk.nbytes))
                _BYTES_OUT.add(blob_len)
        else:
            ex = Executor("process", workers=workers, shm=True)
            for window in _windows(chunks, 2 * workers):
                parts = ex.map(_roundtrip_chunk,
                               [(codec, c) for c in window],
                               workers=workers)
                for part_m, part_e, nbytes, blob_len, size in parts:
                    with obs.span("stream.fold") as fold_sp:
                        moments.merge(part_m)
                        errors.merge(part_e)
                    _FOLD_H.observe(fold_sp.duration)
                    n_chunks += 1
                    n_points += size
                    bytes_in += nbytes
                    bytes_out += blob_len
                    _CHUNKS.add(1)
                    _BYTES_IN.add(nbytes)
                    _BYTES_OUT.add(blob_len)
        sp.note(chunks=n_chunks, bytes_in=bytes_in, bytes_out=bytes_out)

    return StreamOutcome(
        variant=codec.variant,
        n_chunks=n_chunks,
        n_points=n_points,
        bytes_in=bytes_in,
        bytes_out=bytes_out,
        characteristics=moments.finalize(),
        errors=errors.finalize(),
        rmsz=None if rmsz_recon is None else rmsz_recon.finalize(),
        rmsz_original=None if rmsz_orig is None else rmsz_orig.finalize(),
    )
