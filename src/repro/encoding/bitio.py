"""Vectorized bit packing primitives.

Two layouts are provided:

- **fixed-width**: every value occupies exactly ``width`` bits, MSB first.
- **unary**: value ``q`` is written as ``q`` one-bits followed by a
  terminating zero-bit.  Because every zero in a pure unary stream is a
  terminator, decoding is a single :func:`numpy.flatnonzero` + ``diff`` —
  this is what makes the split-stream Rice codec in
  :mod:`repro.encoding.rice` fully vectorizable.

All functions operate on ``uint64`` value arrays and ``bytes`` payloads.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_fixed", "unpack_fixed", "pack_unary", "unpack_unary"]

_MAX_WIDTH = 64


def pack_fixed(values: np.ndarray, width: int) -> bytes:
    """Pack ``values`` into a dense MSB-first bitstream, ``width`` bits each.

    ``width == 0`` is allowed and produces an empty payload (all values must
    then be zero, which the caller guarantees by construction).
    """
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if not 0 <= width <= _MAX_WIDTH:
        raise ValueError(f"width must be in 0..{_MAX_WIDTH}, got {width}")
    if width == 0:
        if values.size and values.max() != 0:
            raise ValueError("width=0 requires all-zero values")
        return b""
    if width < _MAX_WIDTH and values.size and int(values.max()) >> width:
        raise ValueError(f"value does not fit in {width} bits")
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((values[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits.ravel()).tobytes()


def unpack_fixed(data: bytes, width: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_fixed`; returns ``count`` uint64 values."""
    if not 0 <= width <= _MAX_WIDTH:
        raise ValueError(f"width must be in 0..{_MAX_WIDTH}, got {width}")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if width == 0:
        return np.zeros(count, dtype=np.uint64)
    nbits = width * count
    if len(data) * 8 < nbits:
        raise ValueError(
            f"payload has {len(data) * 8} bits, need {nbits} "
            f"for {count} values of width {width}"
        )
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8), count=nbits)
    bits = bits.reshape(count, width).astype(np.uint64)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    return (bits << shifts[None, :]).sum(axis=1, dtype=np.uint64)


def pack_unary(values: np.ndarray) -> bytes:
    """Pack non-negative ``values`` as unary codes (q ones, then a zero)."""
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if values.size == 0:
        return b""
    total = int(values.sum()) + values.size
    bits = np.ones(total, dtype=np.uint8)
    # Terminator of code i sits right after its q ones.
    ends = np.cumsum(values.astype(np.int64) + 1) - 1
    bits[ends] = 0
    return np.packbits(bits).tobytes()


def unpack_unary(data: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`pack_unary`; returns ``count`` uint64 quotients."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count == 0:
        return np.zeros(0, dtype=np.uint64)
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
    zeros = np.flatnonzero(bits == 0)
    if zeros.size < count:
        raise ValueError(
            f"unary stream holds {zeros.size} codes, expected {count}"
        )
    ends = zeros[:count]
    starts = np.concatenate([[np.int64(-1)], ends[:-1]])
    return (ends - starts - 1).astype(np.uint64)
