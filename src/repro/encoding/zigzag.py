"""Zigzag mapping between signed and unsigned integers.

Maps 0, -1, 1, -2, 2, ... to 0, 1, 2, 3, 4, ... so that small-magnitude
prediction residuals (of either sign) become small unsigned integers, the
regime in which Golomb-Rice coding is efficient.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zigzag_encode", "zigzag_decode"]


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map int64 ``values`` to uint64 zigzag codes."""
    values = np.ascontiguousarray(values, dtype=np.int64)
    return ((values << 1) ^ (values >> 63)).astype(np.uint64)


def zigzag_decode(codes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    codes = np.ascontiguousarray(codes, dtype=np.uint64)
    return ((codes >> np.uint64(1)).astype(np.int64)) ^ (
        -(codes & np.uint64(1)).astype(np.int64)
    )
