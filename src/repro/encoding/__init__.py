"""Low-level encoding substrate shared by the compressors.

Everything here is implemented with vectorized NumPy (no per-sample Python
loops) so the pure-Python codecs remain usable at paper scale (~1.5M points
per 3-D variable):

- :mod:`repro.encoding.bitio` — fixed-width and unary bit packing.
- :mod:`repro.encoding.rice` — a split-stream Golomb-Rice entropy codec.
- :mod:`repro.encoding.zigzag` — signed/unsigned integer mapping.
- :mod:`repro.encoding.deflate` — HDF5-style shuffle filter + DEFLATE.
- :mod:`repro.encoding.container` — tiny length-prefixed section container
  used by codecs to serialize multi-stream payloads.
"""

from repro.encoding.bitio import (
    pack_fixed,
    unpack_fixed,
    pack_unary,
    unpack_unary,
)
from repro.encoding.rice import rice_encode, rice_decode, choose_rice_k
from repro.encoding.zigzag import zigzag_encode, zigzag_decode
from repro.encoding.deflate import (
    deflate,
    inflate,
    shuffle_bytes,
    unshuffle_bytes,
)
from repro.encoding.container import SectionWriter, SectionReader

__all__ = [
    "pack_fixed",
    "unpack_fixed",
    "pack_unary",
    "unpack_unary",
    "rice_encode",
    "rice_decode",
    "choose_rice_k",
    "zigzag_encode",
    "zigzag_decode",
    "deflate",
    "inflate",
    "shuffle_bytes",
    "unshuffle_bytes",
    "SectionWriter",
    "SectionReader",
]
