"""Shuffle filter + DEFLATE, the NetCDF-4/HDF5 lossless scheme.

NetCDF-4's zlib compression is far more effective on floating-point arrays
when preceded by HDF5's *shuffle* filter, which transposes the byte planes
of the array (all first bytes, then all second bytes, ...).  Exponent bytes
are highly repetitive across neighbouring values, so grouping them gives
DEFLATE long runs to exploit.  This module implements both pieces; it is the
lossless baseline ("NC") used throughout the paper's tables.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["shuffle_bytes", "unshuffle_bytes", "deflate", "inflate"]


def shuffle_bytes(data: bytes, itemsize: int) -> bytes:
    """Apply the HDF5 shuffle filter: transpose byte planes of the buffer."""
    if itemsize <= 0:
        raise ValueError(f"itemsize must be positive, got {itemsize}")
    if len(data) % itemsize:
        raise ValueError(
            f"buffer length {len(data)} is not a multiple of itemsize {itemsize}"
        )
    if itemsize == 1 or not data:
        return bytes(data)
    arr = np.frombuffer(data, dtype=np.uint8).reshape(-1, itemsize)
    return arr.T.tobytes()


def unshuffle_bytes(data: bytes, itemsize: int) -> bytes:
    """Inverse of :func:`shuffle_bytes`."""
    if itemsize <= 0:
        raise ValueError(f"itemsize must be positive, got {itemsize}")
    if len(data) % itemsize:
        raise ValueError(
            f"buffer length {len(data)} is not a multiple of itemsize {itemsize}"
        )
    if itemsize == 1 or not data:
        return bytes(data)
    arr = np.frombuffer(data, dtype=np.uint8).reshape(itemsize, -1)
    return arr.T.tobytes()


def deflate(data: bytes, level: int = 4, *, itemsize: int = 1) -> bytes:
    """Shuffle (if ``itemsize > 1``) then DEFLATE ``data``.

    ``level=4`` mirrors NetCDF-4's common default deflate level.
    """
    return zlib.compress(shuffle_bytes(data, itemsize), level)


def inflate(data: bytes, *, itemsize: int = 1) -> bytes:
    """Inverse of :func:`deflate`."""
    return unshuffle_bytes(zlib.decompress(data), itemsize)
