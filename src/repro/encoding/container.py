"""Length-prefixed multi-section byte container.

Every compressor in :mod:`repro.compressors` serializes several logical
streams (metadata, quotients, remainders, bitmaps, ...).  This tiny framing
layer keeps that uniform: a container is a magic + section count header,
followed by ``count`` sections each stored as ``<name-len><name><data-len>
<data>``.  Sections are looked up by name at read time, so formats can add
sections without breaking old readers.
"""

from __future__ import annotations

import struct

__all__ = ["SectionWriter", "SectionReader"]

_MAGIC = b"RPRC"  # RePRo Container
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


class SectionWriter:
    """Accumulates named byte sections and serializes them."""

    def __init__(self) -> None:
        self._sections: list[tuple[str, bytes]] = []
        self._names: set[str] = set()

    def add(self, name: str, data: bytes) -> None:
        """Append section ``name`` with payload ``data``."""
        if not name or len(name) > 255:
            raise ValueError(f"section name must be 1..255 chars, got {name!r}")
        if name in self._names:
            raise ValueError(f"duplicate section {name!r}")
        self._names.add(name)
        self._sections.append((name, bytes(data)))

    def tobytes(self) -> bytes:
        """Serialize the accumulated sections."""
        parts = [_MAGIC, _U32.pack(len(self._sections))]
        for name, data in self._sections:
            encoded = name.encode("utf-8")
            parts.append(bytes([len(encoded)]))
            parts.append(encoded)
            parts.append(_U64.pack(len(data)))
            parts.append(data)
        return b"".join(parts)


class SectionReader:
    """Parses a container produced by :class:`SectionWriter`."""

    def __init__(self, data: bytes) -> None:
        if len(data) < 8 or data[:4] != _MAGIC:
            raise ValueError("not a repro section container")
        (count,) = _U32.unpack_from(data, 4)
        off = 8
        self._sections: dict[str, bytes] = {}
        for _ in range(count):
            if off >= len(data):
                raise ValueError("truncated section container")
            name_len = data[off]
            off += 1
            name = data[off : off + name_len].decode("utf-8")
            off += name_len
            (size,) = _U64.unpack_from(data, off)
            off += 8
            payload = data[off : off + size]
            if len(payload) != size:
                raise ValueError(f"truncated section {name!r}")
            off += size
            self._sections[name] = payload

    def __contains__(self, name: str) -> bool:
        return name in self._sections

    def names(self) -> list[str]:
        """Section names in file order."""
        return list(self._sections)

    def get(self, name: str) -> bytes:
        """Payload of section ``name`` (KeyError if absent)."""
        try:
            return self._sections[name]
        except KeyError:
            raise KeyError(f"container has no section {name!r}") from None
