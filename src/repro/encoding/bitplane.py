"""Noise-plane split coding for quantizer residuals.

Prediction residuals from an error-bounded quantizer are noise-dominated
below some bit plane: the low ``k`` bits of each zigzagged residual are
nearly uniform (incompressible), while the remaining high bits are
strongly skewed towards zero.  DEFLATE models neither part well when
they are interleaved in one stream — its Huffman tables pay for the
mixture, which costs 0.3-1.0 bits/value on the short fields this repo
compresses.  Splitting the stream stores the low planes raw (bit-packed,
exactly ``n * k / 8`` bytes — uniform bits cannot be compressed anyway)
and DEFLATEs only the compressible high planes.

The split point ``k`` is the caller's choice; :func:`candidate_splits`
suggests the neighbourhood of the rate-optimal value for geometric-ish
residual distributions (``k ~ log2(mean)``), so an encoder can trial a
handful of candidates instead of every plane.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.encoding.deflate import deflate, inflate

__all__ = ["split_encode", "split_decode", "candidate_splits"]

#: Low planes are capped well below the 64-bit residual width; zigzagged
#: lattice residuals never need more (the quantizer caps codes at 2**40).
MAX_SPLIT = 48

_HEADER = struct.Struct("<BB")  # split point k, high-part byte width


def _narrow(values: np.ndarray) -> tuple[int, np.ndarray]:
    """Narrow uint64 values to the smallest unsigned dtype that fits."""
    peak = int(values.max()) if values.size else 0
    for width in (1, 2, 4):
        if peak < 1 << (8 * width):
            return width, values.astype(f"<u{width}")
    return 8, values


def _pack_low(residuals: np.ndarray, k: int) -> bytes:
    """Bit-pack the low ``k`` bits of each residual, MSB-first."""
    if k == 0:
        return b""
    shifts = np.arange(k - 1, -1, -1, dtype=np.uint64)
    bits = (residuals[:, None] >> shifts[None, :]) & np.uint64(1)
    return np.packbits(bits.astype(np.uint8).reshape(-1)).tobytes()


def _unpack_low(buf: bytes, count: int, k: int) -> np.ndarray:
    """Inverse of :func:`_pack_low` — ``count`` uint64 low parts."""
    if k == 0:
        return np.zeros(count, dtype=np.uint64)
    bits = np.unpackbits(np.frombuffer(buf, dtype=np.uint8),
                         count=count * k)
    weights = np.uint64(1) << np.arange(k - 1, -1, -1, dtype=np.uint64)
    return (bits.reshape(count, k).astype(np.uint64) * weights).sum(
        axis=1, dtype=np.uint64
    )


def split_encode(residuals: np.ndarray, k: int, level: int = 6) -> bytes:
    """Encode non-negative residuals with a raw/DEFLATE plane split.

    The low ``k`` bits of each value are stored verbatim; the high bits
    are narrowed to the smallest unsigned dtype and shuffle+DEFLATEd.
    """
    if not 0 <= k <= MAX_SPLIT:
        raise ValueError(f"split point must be 0..{MAX_SPLIT}, got {k}")
    residuals = np.ascontiguousarray(residuals, dtype=np.uint64)
    low = _pack_low(residuals, k)
    width, narrowed = _narrow(residuals >> np.uint64(k))
    high = deflate(narrowed.tobytes(), level, itemsize=width)
    return _HEADER.pack(k, width) + low + high


def split_decode(payload: bytes, count: int) -> np.ndarray:
    """Decode :func:`split_encode` output back to uint64 residuals."""
    if len(payload) < _HEADER.size:
        raise ValueError("split payload shorter than its header")
    k, width = _HEADER.unpack_from(payload)
    if k > MAX_SPLIT:
        raise ValueError(f"bad split point {k}")
    if width not in (1, 2, 4, 8):
        raise ValueError(f"bad split high width {width}")
    n_low = (count * k + 7) // 8
    body = payload[_HEADER.size:]
    if len(body) < n_low:
        raise ValueError("split payload truncated")
    low = _unpack_low(body[:n_low], count, k)
    high = np.frombuffer(
        inflate(body[n_low:], itemsize=width), dtype=f"<u{width}"
    ).astype(np.uint64)
    if high.size != count:
        raise ValueError(
            f"decoded {high.size} high parts, expected {count}"
        )
    return (high << np.uint64(k)) | low


def candidate_splits(residuals: np.ndarray) -> list[int]:
    """Split points worth trialling for geometric-ish residuals.

    For a distribution with mean ``mu`` the noise floor sits near
    ``log2(mu)`` planes, so the rate-optimal split is in that
    neighbourhood; returns it plus both neighbours (deduplicated,
    clamped to ``1..MAX_SPLIT``).  An empty or all-zero stream has no
    useful split.
    """
    residuals = np.asarray(residuals, dtype=np.uint64)
    if not residuals.size:
        return []
    mean = float(residuals.mean())
    if mean < 1.0:
        return [1]
    k0 = max(int(mean).bit_length() - 1, 1)
    return sorted({
        k for k in (k0 - 1, k0, k0 + 1) if 1 <= k <= MAX_SPLIT
    })
