"""Split-stream Golomb-Rice entropy codec.

A Rice code with parameter ``k`` writes a value ``v >= 0`` as the unary code
of the quotient ``q = v >> k`` followed by the ``k`` low bits of ``v``.
Interleaving the two parts makes vectorized decoding awkward (a zero bit may
be either a terminator or remainder payload), so we store them as *separate
streams* — a pure-unary quotient stream and a fixed-width remainder stream —
plus an escape stream for outliers:

- values with ``q >= ESCAPE_Q`` are written as ``ESCAPE_Q`` in the quotient
  stream and their full 64-bit value in the escape stream;
- everything decodes with :func:`numpy.unpackbits`-level primitives only.

The framing adds a 24-byte header; for the residual streams produced by the
predictive codecs this is negligible.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.encoding.bitio import (
    pack_fixed,
    pack_unary,
    unpack_fixed,
    unpack_unary,
)

__all__ = ["rice_encode", "rice_decode", "choose_rice_k"]

#: Quotients at or above this value are escaped to a raw 64-bit side stream.
ESCAPE_Q = 40

_HEADER = struct.Struct("<IQIIxxxx")  # magic, count, k, n_escaped (+pad)
_MAGIC = 0x52494345  # "RICE"


def choose_rice_k(values: np.ndarray) -> int:
    """Pick a near-optimal Rice parameter for ``values``.

    Uses the classic mean-based rule: the optimal ``k`` is approximately
    ``log2(mean)``; we search the three integers around it and keep the one
    with the smallest exact encoded size.
    """
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if values.size == 0:
        return 0
    mean = float(values.mean())
    guess = max(0, int(np.log2(mean + 1.0)))
    best_k, best_bits = 0, np.inf
    for k in range(max(0, guess - 1), min(63, guess + 2) + 1):
        q = values >> np.uint64(k)
        q_capped = np.minimum(q, np.uint64(ESCAPE_Q))
        escaped = int((q >= ESCAPE_Q).sum())
        bits = int(q_capped.sum()) + values.size + k * values.size + 64 * escaped
        if bits < best_bits:
            best_k, best_bits = k, bits
    return best_k


def rice_encode(values: np.ndarray, k: int | None = None) -> bytes:
    """Encode non-negative integers with the split-stream Rice code."""
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if k is None:
        k = choose_rice_k(values)
    if not 0 <= k <= 63:
        raise ValueError(f"k must be in 0..63, got {k}")
    q = values >> np.uint64(k)
    escape_mask = q >= ESCAPE_Q
    n_escaped = int(escape_mask.sum())
    q_stream = pack_unary(np.minimum(q, np.uint64(ESCAPE_Q)))
    mask = np.uint64((1 << k) - 1) if k else np.uint64(0)
    remainders = values & mask
    # Escaped values carry their full payload out-of-band; their remainder
    # slot is zeroed so the remainder stream stays fixed-width.
    if n_escaped:
        remainders = np.where(escape_mask, np.uint64(0), remainders)
    r_stream = pack_fixed(remainders, k)
    e_stream = values[escape_mask].tobytes()
    header = _HEADER.pack(_MAGIC, values.size, k, n_escaped)
    return b"".join(
        (
            header,
            struct.pack("<QQ", len(q_stream), len(r_stream)),
            q_stream,
            r_stream,
            e_stream,
        )
    )


def rice_decode(data: bytes) -> np.ndarray:
    """Inverse of :func:`rice_encode`; returns a uint64 array."""
    if len(data) < _HEADER.size + 16:
        raise ValueError("truncated Rice payload")
    magic, count, k, n_escaped = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise ValueError(f"bad Rice magic 0x{magic:08x}")
    off = _HEADER.size
    q_len, r_len = struct.unpack_from("<QQ", data, off)
    off += 16
    q_stream = data[off : off + q_len]
    off += q_len
    r_stream = data[off : off + r_len]
    off += r_len
    e_stream = data[off : off + 8 * n_escaped]
    if len(e_stream) != 8 * n_escaped:
        raise ValueError("truncated Rice escape stream")

    q = unpack_unary(q_stream, count)
    remainders = unpack_fixed(r_stream, k, count)
    values = (q << np.uint64(k)) | remainders
    escape_mask = q >= ESCAPE_Q
    if int(escape_mask.sum()) != n_escaped:
        raise ValueError("Rice escape count mismatch")
    if n_escaped:
        values[escape_mask] = np.frombuffer(e_stream, dtype=np.uint64)
    return values
