"""The job manager: queue, worker pool, cache, and lifecycle owner.

:class:`JobManager` is the daemon's engine and is equally usable without
any socket in front of it (the integration tests drive it directly).
Responsibilities:

- **Admission** — :meth:`submit` resolves the job kind, consults the
  artifact store for a warm result (identical ``(kind, params)`` pairs
  share a cache key), and either answers instantly from cache or
  enqueues; a full queue surfaces as :class:`ServerBusy` carrying the
  ``retry_after`` hint the protocol forwards to clients.
- **Execution** — a small pool of manager threads pulls jobs off the
  priority queue and runs each one as a single-item
  :meth:`Executor.map <repro.parallel.executor.Executor.map>` with
  ``isolate=True``, so the actual work happens in a disposable
  executor worker (a separate process under the default policy).  A
  job that segfaults or hangs costs its own attempts; the manager
  thread, and therefore the daemon, survives and moves on.
- **Caching** — successful results are ``put`` into the active
  :mod:`repro.store` (when one is configured) under the spec's key;
  the store root travels inside the :class:`~repro.serve.jobs.JobPayload`
  so workers populate the same cache.
- **Shutdown** — :meth:`shutdown` closes the queue (draining accepted
  jobs by default, cancelling them on a fast stop) and joins the
  worker threads; SIGTERM handling in the CLI maps straight onto it.

- **Telemetry** — every manager keeps always-on O(1) tallies (job
  counts per kind, cache hits, wait/run histograms) independent of
  ``REPRO_TRACE``; :meth:`telemetry` snapshots them in the flattened
  dict shape :func:`repro.obs.telemetry.exposition` renders, which is
  what the daemon's ``metrics`` op and ``repro top`` consume.

Sizing knobs (constructor arguments override the environment):
``REPRO_SERVE_WORKERS`` (default 2 manager threads),
``REPRO_SERVE_QUEUE`` (default 64 pending jobs), and
``REPRO_SERVE_RETRY_AFTER`` (default 1.0 s busy hint).
"""

from __future__ import annotations

import itertools
import threading

from repro import config, obs, store
from repro.obs.sinks import HistogramStats, _metric_key
from repro.parallel.executor import Executor
from repro.parallel.failures import TaskFailure
from repro.serve.jobs import (
    JobHandle,
    JobPayload,
    JobSpec,
    execute_job,
    resolve_job_kind,
)
from repro.serve.queue import JobQueue, QueueFull

__all__ = ["JobManager", "ServerBusy"]

DEFAULT_WORKERS = 2
DEFAULT_QUEUE = 64
DEFAULT_RETRY_AFTER = 1.0

_JOBS = obs.counter("serve.jobs")
_DONE = obs.counter("serve.done")
_FAILED = obs.counter("serve.failed")
_CANCELLED = obs.counter("serve.cancelled")
_REJECTED = obs.counter("serve.rejected")
_CACHE_HITS = obs.counter("serve.cache_hits")
_CACHE_MISSES = obs.counter("serve.cache_misses")
_WAIT = obs.gauge("serve.wait_s")
_WAIT_H = obs.histogram("serve.job_wait_s")
_RUN_H = obs.histogram("serve.job_run_s")


class _Telemetry:
    """Always-on per-manager tallies behind the ``metrics`` op.

    Deliberately independent of ``REPRO_TRACE``: a production daemon
    with tracing off still answers ``repro top`` with live counts and
    latency percentiles.  Everything is O(1) per job under one lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, float] = {}
        self.wait = HistogramStats()
        self.run = HistogramStats()

    def bump(self, name: str, kind: str | None = None) -> None:
        """Increment ``name`` (and its per-``kind`` twin) by one."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + 1.0
            if kind is not None:
                key = _metric_key(name, {"kind": kind})
                self.counters[key] = self.counters.get(key, 0.0) + 1.0

    def observe(self, wait_s: float | None, run_s: float | None) -> None:
        """Fold one job's wait/run seconds into the histograms."""
        with self._lock:
            if wait_s is not None:
                self.wait.observe(wait_s)
            if run_s is not None:
                self.run.observe(run_s)

    def snapshot(self) -> tuple[dict[str, float], HistogramStats,
                                HistogramStats]:
        """Consistent copies of the counters and both histograms."""
        with self._lock:
            wait = HistogramStats(self.wait.bounds)
            wait.merge(self.wait)
            run = HistogramStats(self.run.bounds)
            run.merge(self.run)
            return dict(self.counters), wait, run


class ServerBusy(Exception):
    """The queue is full; the client should retry after a delay."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(
            f"server busy; retry in {retry_after:g}s")
        self.retry_after = retry_after


def _env_workers() -> int:
    value = config.env_int_opt("REPRO_SERVE_WORKERS")
    return value if value and value > 0 else DEFAULT_WORKERS


def _env_queue() -> int:
    value = config.env_int_opt("REPRO_SERVE_QUEUE")
    return value if value and value > 0 else DEFAULT_QUEUE


def _env_retry_after() -> float:
    value = config.env_float_opt("REPRO_SERVE_RETRY_AFTER")
    return value if value and value > 0 else DEFAULT_RETRY_AFTER


class JobManager:
    """Admits, schedules, executes, and caches verification jobs."""

    def __init__(self, *, workers: int | None = None,
                 queue_size: int | None = None,
                 retry_after: float | None = None,
                 executor: Executor | None = None) -> None:
        self.workers = workers if workers is not None else _env_workers()
        if self.workers < 1:
            raise ValueError(
                f"workers must be positive, got {self.workers}")
        queue_size = (queue_size if queue_size is not None
                      else _env_queue())
        retry_after = (retry_after if retry_after is not None
                       else _env_retry_after())
        self.queue = JobQueue(queue_size, retry_after)
        #: Executor running the actual job bodies.  The default policy's
        #: process backend gives crash isolation; tests pass a
        #: thread/serial executor where isolation is irrelevant.
        self.executor = executor if executor is not None else Executor()
        self._jobs: dict[str, JobHandle] = {}
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._threads: list[threading.Thread] = []
        self._stopping = threading.Event()
        self._started = False
        self._telemetry = _Telemetry()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Spin up the worker threads (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
            for i in range(self.workers):
                t = threading.Thread(target=self._worker_loop,
                                     name=f"serve-worker-{i}",
                                     daemon=True)
                t.start()
                self._threads.append(t)

    def shutdown(self, drain: bool = True,
                 timeout: float | None = None) -> None:
        """Stop accepting work and wind the pool down.

        ``drain=True`` (the SIGTERM path) lets every accepted job finish
        first; ``drain=False`` cancels whatever is still queued.  Jobs
        already *running* always complete — the executor owns them.
        """
        self._stopping.set()
        leftovers = self.queue.close(drain=drain)
        for handle in leftovers:
            handle.transition("cancelled")
            _CANCELLED.add()
            self._telemetry.bump("serve.cancelled")
        for t in self._threads:
            t.join(timeout=timeout)

    # -- admission ------------------------------------------------------------

    def submit(self, spec: JobSpec,
               trace: obs.TraceContext | None = None) -> JobHandle:
        """Admit ``spec``: cache-answer, enqueue, or refuse.

        ``trace`` is the client's propagated trace context (from the
        protocol's ``trace`` frame field); the submit span and, later,
        the job's execution spans all join that trace.  Raises
        :class:`~repro.serve.jobs.UnknownJobKind` for a kind no one
        registered, :class:`ServerBusy` on a full queue, and
        ``RuntimeError`` once shutdown began.
        """
        with obs.attach_context(trace), \
                obs.span("serve.submit", kind=spec.kind) as sp:
            fn = resolve_job_kind(spec.kind)
            job_id = f"job-{next(self._seq):06d}"
            _JOBS.add(kind=spec.kind)
            self._telemetry.bump("serve.jobs", spec.kind)
            cached = self._cache_get(spec)
            if cached is not None:
                _CACHE_HITS.add(kind=spec.kind)
                self._telemetry.bump("serve.cache_hits", spec.kind)
                sp.note(cache="hit")
                handle = JobHandle(job_id, spec, cache_hit=True)
                handle.transition("done", result=cached)
                _DONE.add(kind=spec.kind)
                self._telemetry.bump("serve.done", spec.kind)
                with self._lock:
                    self._jobs[job_id] = handle
                return handle
            _CACHE_MISSES.add(kind=spec.kind)
            self._telemetry.bump("serve.cache_misses", spec.kind)
            sp.note(cache="miss")
            handle = JobHandle(job_id, spec)
            # The queued job remembers the *submit span's* context, not
            # the raw client one, so worker spans hang off serve.submit
            # -> serve.job in the reconstructed tree.
            handle.trace = sp.context if sp.context is not None else trace
            handle.payload = JobPayload(
                fn=fn, params=spec.params, store_root=store.current_root())
            with self._lock:
                self._jobs[job_id] = handle
            try:
                self.queue.put(handle)
            except QueueFull as exc:
                _REJECTED.add(kind=spec.kind)
                self._telemetry.bump("serve.rejected", spec.kind)
                with self._lock:
                    del self._jobs[job_id]
                raise ServerBusy(exc.retry_after) from exc
            except RuntimeError:
                with self._lock:
                    del self._jobs[job_id]
                raise
            return handle

    def cancel(self, job_id: str) -> bool:
        """Cancel ``job_id`` if it has not finished; True when it took.

        A queued job is removed and moved to ``cancelled`` immediately;
        a running job is flagged and its result is discarded when the
        worker comes back (the underlying computation is not preempted).
        """
        handle = self.get(job_id)
        if handle is None or handle.terminal:
            return False
        handle.request_cancel()
        if self.queue.discard(job_id):
            handle.transition("cancelled")
            _CANCELLED.add(kind=handle.spec.kind)
            self._telemetry.bump("serve.cancelled", handle.spec.kind)
        return True

    # -- observation ----------------------------------------------------------

    def get(self, job_id: str) -> JobHandle | None:
        """The handle for ``job_id``, or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[JobHandle]:
        """Every known handle, in submission order."""
        with self._lock:
            return list(self._jobs.values())

    # -- the worker loop ------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            handle = self.queue.get(timeout=0.1)
            if handle is None:
                if self._stopping.is_set():
                    return
                continue
            self._run_one(handle)

    def _run_one(self, handle: JobHandle) -> None:
        spec = handle.spec
        if handle.cancel_requested:
            handle.transition("cancelled")
            _CANCELLED.add(kind=spec.kind)
            self._telemetry.bump("serve.cancelled", spec.kind)
            return
        handle.transition("running")
        wait_s = handle.timings().get("wait_s", 0.0)
        _WAIT.set(wait_s, kind=spec.kind)
        _WAIT_H.observe(wait_s, kind=spec.kind)
        # The manager thread adopts the job's trace context, so the
        # serve.job span (and every worker span the executor merges
        # back) lands in the submitting request's trace.
        with obs.attach_context(handle.trace), \
                obs.span("serve.job", kind=spec.kind, job=handle.id,
                         wait_s=round(wait_s, 6)) as sp:
            payload = handle.payload
            outcome = self.executor.map(
                execute_job, [payload],
                on_failure="collect", isolate=True)
            slot = outcome.results[0] if outcome.results else None
            if handle.cancel_requested:
                handle.transition("cancelled")
                _CANCELLED.add(kind=spec.kind)
                self._telemetry.bump("serve.cancelled", spec.kind)
                sp.note(outcome="cancelled")
            elif isinstance(slot, TaskFailure):
                handle.transition("failed", error={
                    "type": slot.error_type,
                    "message": slot.message,
                    "kind": slot.kind,
                    "attempts": slot.attempts,
                })
                _FAILED.add(kind=spec.kind)
                self._telemetry.bump("serve.failed", spec.kind)
                sp.note(outcome="failed", error=slot.error_type)
            else:
                # Cache before the terminal transition: anyone woken by
                # ``done`` must already find the warm result.
                self._cache_put(spec, slot)
                handle.transition("done", result=slot)
                _DONE.add(kind=spec.kind)
                self._telemetry.bump("serve.done", spec.kind)
                sp.note(outcome="done")
        run_s = handle.timings().get("run_s")
        if run_s is not None:
            _RUN_H.observe(run_s, kind=spec.kind)
        self._telemetry.observe(wait_s, run_s)

    # -- telemetry ------------------------------------------------------------

    def telemetry(self) -> dict:
        """A live metrics snapshot in the exposition renderer's shape.

        Always available (no ``REPRO_TRACE`` needed): counter tallies,
        queue depth, worker liveness, and the wait/run histograms.  The
        daemon's ``metrics`` op feeds this straight into
        :func:`repro.obs.telemetry.exposition`.
        """
        counters, wait, run = self._telemetry.snapshot()
        gauges = {
            "serve.queue_depth": float(self.queue.depth()),
            "serve.workers_alive": float(
                sum(t.is_alive() for t in self._threads)),
            "serve.jobs_known": float(len(self._jobs)),
        }
        return {
            "counters": counters,
            "gauges": gauges,
            "hists": {"serve.job_wait_s": wait, "serve.job_run_s": run},
        }

    # -- result cache ---------------------------------------------------------

    def _cache_get(self, spec: JobSpec) -> dict | None:
        st = store.get_store()
        if st is None:
            return None
        return st.get(spec.key())

    def _cache_put(self, spec: JobSpec, result: dict) -> None:
        st = store.get_store()
        if st is None:
            return
        st.put(spec.key(), result, kind="json")
