"""repro.serve — the compression verification service.

Turns the one-shot pipeline (characterize → error metrics → PVT
acceptance → hybrid selection) into a long-running daemon: clients
submit ``compress`` / ``verify`` / ``hybrid-plan`` *jobs* over
length-prefixed JSON frames (TCP loopback or Unix socket) and poll or
stream their lifecycle.  The layers, bottom up:

- :mod:`repro.serve.protocol` — the wire format (4-byte length prefix +
  JSON object) and its size ceiling;
- :mod:`repro.serve.jobs` — :class:`JobSpec` / :class:`JobHandle`
  lifecycle state machine and the job-kind registry;
- :mod:`repro.serve.queue` — bounded priority queue whose full state is
  the backpressure signal;
- :mod:`repro.serve.manager` — :class:`JobManager`: admission, store
  caching, and execution on the :class:`~repro.parallel.executor.Executor`
  so a crashed worker process never takes the daemon down;
- :mod:`repro.serve.daemon` — :class:`ReproServer`, the socket front
  end with graceful SIGTERM draining;
- :mod:`repro.serve.client` — :class:`ServeClient`, the thin caller the
  ``repro submit`` / ``repro jobs`` subcommands use.

Sizing and addressing come from ``REPRO_SERVE_*`` environment knobs
(host/port/socket/workers/queue/retry-after/max-frame).  The protocol,
state machine, and a worked client example live in ``docs/serving.md``.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import ReproServer, default_address
from repro.serve.jobs import (
    JobHandle,
    JobPayload,
    JobSpec,
    STATES,
    TERMINAL_STATES,
    UnknownJobKind,
    execute_job,
    job_kinds,
    register_job_kind,
    resolve_job_kind,
)
from repro.serve.manager import JobManager, ServerBusy
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME,
    ProtocolError,
    max_frame_bytes,
    recv_frame,
    send_frame,
)
from repro.serve.queue import JobQueue, QueueFull

__all__ = [
    "DEFAULT_MAX_FRAME",
    "JobHandle",
    "JobManager",
    "JobPayload",
    "JobQueue",
    "JobSpec",
    "ProtocolError",
    "QueueFull",
    "ReproServer",
    "STATES",
    "ServeClient",
    "ServeError",
    "ServerBusy",
    "TERMINAL_STATES",
    "UnknownJobKind",
    "default_address",
    "execute_job",
    "job_kinds",
    "max_frame_bytes",
    "recv_frame",
    "register_job_kind",
    "resolve_job_kind",
    "send_frame",
]
