"""Bounded priority queue feeding the daemon's worker pool.

Jobs are ordered by ``(priority, submission sequence)`` — smaller
priority first, FIFO within a priority — under one condition variable.
The queue is *bounded*: when ``depth()`` reaches ``maxsize``,
:meth:`JobQueue.put` raises :class:`QueueFull` instead of blocking, and
the daemon converts that into a ``busy`` rejection carrying a
``retry_after`` hint.  Rejecting at the door (instead of buffering
without limit) is the backpressure contract: a client that outruns the
workers learns immediately and retries later, and daemon memory stays
bounded no matter how fast jobs arrive.

Shutdown has two shapes, matching the daemon's SIGTERM semantics:

- ``close(drain=True)`` — no new puts; getters keep draining until the
  queue is empty, then receive ``None``; every accepted job still runs.
- ``close(drain=False)`` — no new puts *and* remaining entries are
  returned to the caller (the manager cancels them); getters receive
  ``None`` immediately.

Cancellation of a queued job is lazy: :meth:`discard` marks the id and
:meth:`get` skips marked entries on the way out, so cancel never has to
re-heapify.
"""

from __future__ import annotations

import heapq
import itertools
import threading

from repro import obs
from repro.serve.jobs import JobHandle

__all__ = ["JobQueue", "QueueFull"]

_DEPTH = obs.gauge("serve.queue_depth")


class QueueFull(Exception):
    """The queue is at capacity; retry after the advertised delay."""

    def __init__(self, maxsize: int, retry_after: float) -> None:
        super().__init__(
            f"job queue is full ({maxsize} pending); "
            f"retry in {retry_after:g}s")
        self.maxsize = maxsize
        self.retry_after = retry_after


class JobQueue:
    """A thread-safe bounded priority queue of :class:`JobHandle`\\ s."""

    def __init__(self, maxsize: int, retry_after: float = 1.0) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.retry_after = retry_after
        self._heap: list[tuple[int, int, JobHandle]] = []
        self._discarded: set[str] = set()
        self._seq = itertools.count()
        self._cond = threading.Condition()
        self._closed = False
        self._draining = False

    # -- producers ------------------------------------------------------------

    def put(self, handle: JobHandle) -> None:
        """Enqueue ``handle`` or raise :class:`QueueFull` / RuntimeError.

        ``RuntimeError`` signals a closed queue (daemon shutting down) —
        a different refusal than backpressure, so clients can tell
        "retry soon" from "stop submitting".
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("job queue is closed")
            if self._live_depth() >= self.maxsize:
                raise QueueFull(self.maxsize, self.retry_after)
            heapq.heappush(
                self._heap,
                (handle.spec.priority, next(self._seq), handle))
            _DEPTH.set(self._live_depth())
            self._cond.notify()

    # -- consumers ------------------------------------------------------------

    def get(self, timeout: float | None = None) -> JobHandle | None:
        """Next job by priority; ``None`` on timeout or after close.

        During a draining close, remaining jobs are still served;
        ``None`` only appears once the queue is empty (or immediately
        after a non-draining close).
        """
        with self._cond:
            while True:
                handle = self._pop_live()
                if handle is not None:
                    _DEPTH.set(self._live_depth())
                    return handle
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None

    # -- cancellation and shutdown --------------------------------------------

    def discard(self, job_id: str) -> bool:
        """Mark a queued job so :meth:`get` never returns it.

        True when the id was actually waiting in the queue.
        """
        with self._cond:
            waiting = any(h.id == job_id for _, _, h in self._heap
                          if h.id not in self._discarded)
            if waiting:
                self._discarded.add(job_id)
                _DEPTH.set(self._live_depth())
            return waiting

    def close(self, drain: bool = True) -> list[JobHandle]:
        """Refuse new puts; return the jobs that will never run.

        With ``drain=True`` the returned list is empty and getters
        finish the backlog.  Without it, the backlog is handed back for
        the manager to cancel.
        """
        with self._cond:
            self._closed = True
            self._draining = drain
            leftovers: list[JobHandle] = []
            if not drain:
                leftovers = [h for _, _, h in self._heap
                             if h.id not in self._discarded]
                self._heap.clear()
                self._discarded.clear()
                _DEPTH.set(0)
            self._cond.notify_all()
            return leftovers

    def depth(self) -> int:
        """Jobs currently waiting (discarded entries excluded)."""
        with self._cond:
            return self._live_depth()

    # -- internals (call with the lock held) ----------------------------------

    def _live_depth(self) -> int:
        return sum(1 for _, _, h in self._heap
                   if h.id not in self._discarded)

    def _pop_live(self) -> JobHandle | None:
        while self._heap:
            _, _, handle = heapq.heappop(self._heap)
            if handle.id in self._discarded:
                self._discarded.discard(handle.id)
                continue
            return handle
        return None
