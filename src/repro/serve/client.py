"""Thin synchronous client for the verification daemon.

:class:`ServeClient` wraps one socket connection in typed helpers —
``submit`` / ``status`` / ``result`` / ``cancel`` / ``jobs`` /
``watch`` — that send a request frame and interpret the response.  A
``{"ok": false}`` reply surfaces as :class:`ServeError` carrying the
server's error code (``busy`` responses also expose ``retry_after``),
so callers can branch on *why* instead of parsing messages::

    with ServeClient.connect(port=port) as client:
        job = client.submit("verify", {"variant": "fpzip24"})
        final = client.result(job["id"])
        print(final["state"], final["result"]["pass_counts"])

One client = one connection = one outstanding request at a time; for
concurrency, open more clients (connections are cheap and the daemon
serves each on its own thread).  See ``docs/serving.md`` for the wire
format and a full walkthrough.
"""

from __future__ import annotations

import socket
from typing import Iterator

from repro import obs
from repro.serve.daemon import default_address
from repro.serve.protocol import recv_frame, send_frame

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """The daemon answered ``ok: false``."""

    def __init__(self, response: dict) -> None:
        super().__init__(response.get("message")
                         or response.get("error") or "server error")
        self.code = response.get("error", "error")
        self.retry_after = response.get("retry_after")
        self.response = response


class ServeClient:
    """One connection to a :class:`~repro.serve.daemon.ReproServer`."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock

    @classmethod
    def connect(cls, *, host: str | None = None, port: int | None = None,
                socket_path: str | None = None,
                timeout: float | None = None) -> "ServeClient":
        """Dial the daemon; explicit arguments beat ``REPRO_SERVE_*``."""
        env_path, env_host, env_port = default_address()
        socket_path = socket_path if socket_path is not None else env_path
        if socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(socket_path)
        else:
            sock = socket.create_connection(
                (host or env_host, port if port is not None else env_port),
                timeout=timeout)
        return cls(sock)

    def close(self) -> None:
        """Close the connection; the client is unusable afterwards."""
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- plumbing -------------------------------------------------------------

    def call(self, op: str, **fields: object) -> dict:
        """Send one ``op`` frame, return the (ok) response frame."""
        send_frame(self._sock, {"op": op, **fields})
        response = recv_frame(self._sock)
        if response is None:
            raise ConnectionError("server closed the connection")
        if not response.get("ok"):
            raise ServeError(response)
        return response

    # -- operations -----------------------------------------------------------

    def ping(self) -> list[str]:
        """Liveness probe; returns the registered job kinds."""
        return list(self.call("ping")["kinds"])

    def kinds(self) -> list[str]:
        """The job kinds the daemon accepts."""
        return list(self.call("kinds")["kinds"])

    def submit(self, kind: str, params: dict | None = None, *,
               priority: int = 0) -> dict:
        """Submit a job; returns its snapshot (``id``, ``state``, ...).

        With tracing on (and ``REPRO_TRACE_PROPAGATE`` not disabled)
        the request carries this process's trace context, so the
        daemon- and worker-side spans of the job join the caller's
        trace — ``repro stats --trace <id>`` then shows the whole
        request across pids.
        """
        with obs.span("serve.client.submit", kind=kind) as sp:
            fields: dict[str, object] = {
                "kind": kind, "params": params or {},
                "priority": priority,
            }
            if sp.context is not None and obs.propagate_active():
                fields["trace"] = sp.context.to_wire()
            return self.call("submit", **fields)["job"]

    def status(self, job_id: str) -> dict:
        """One snapshot of ``job_id``."""
        return self.call("status", id=job_id)["job"]

    def result(self, job_id: str, timeout: float | None = None) -> dict:
        """Block until ``job_id`` is terminal; returns the snapshot.

        The server bounds each wait (~30 s); this method re-issues the
        request until the job finishes or ``timeout`` elapses, so a
        long-running job does not require client-side configuration.
        """
        waited = 0.0
        while True:
            step = 5.0 if timeout is None else max(timeout - waited, 0.0)
            response = self.call("result", id=job_id, timeout=step)
            if response["done"] or (timeout is not None
                                    and waited >= timeout):
                return response["job"]
            waited += step

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True when the job had not yet finished."""
        return bool(self.call("cancel", id=job_id)["cancelled"])

    def jobs(self) -> list[dict]:
        """Snapshots of every job the daemon knows about."""
        return list(self.call("jobs")["jobs"])

    def watch(self, job_id: str,
              timeout: float | None = None) -> Iterator[dict]:
        """Yield lifecycle events for ``job_id`` until it is terminal.

        The last yielded frame has ``final: true`` and carries the full
        job snapshot under ``job``.
        """
        send_frame(self._sock, {"op": "watch", "id": job_id,
                                "timeout": timeout or 30.0})
        while True:
            frame = recv_frame(self._sock)
            if frame is None:
                raise ConnectionError("server closed the connection")
            if not frame.get("ok"):
                raise ServeError(frame)
            yield frame
            if frame.get("final"):
                return

    def metrics(self) -> str:
        """The daemon's live Prometheus-style telemetry snapshot."""
        return str(self.call("metrics")["metrics"])

    def shutdown(self, drain: bool = True) -> None:
        """Ask the daemon to shut down (draining by default)."""
        self.call("shutdown", drain=drain)
