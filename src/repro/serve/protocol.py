"""Length-prefixed JSON framing for the verification service.

One frame = a 4-byte big-endian unsigned payload length followed by that
many bytes of UTF-8 JSON encoding a single object.  The format is
deliberately dumb: any language with sockets and a JSON parser can drive
the daemon, frames are self-delimiting (no sentinel bytes to escape),
and a partial read is detectable as truncation instead of silently
parsing half a message.

Both sides speak the same frames; the *meaning* of a frame is carried by
its ``op`` (request) / ``ok`` (response) keys, documented with the job
lifecycle in ``docs/serving.md``.  :func:`recv_frame` returns ``None``
on a clean EOF (peer closed between frames) and raises
:class:`ProtocolError` on anything malformed — oversized lengths,
mid-frame disconnects, bytes that do not decode to a JSON object.

The payload-size ceiling (:func:`max_frame_bytes`, knob
``REPRO_SERVE_MAX_FRAME``) bounds what one frame may ask the daemon to
buffer, so a corrupt or hostile length prefix cannot trigger a
multi-gigabyte allocation.
"""

from __future__ import annotations

import json
import socket
import struct

from repro import config

__all__ = [
    "DEFAULT_MAX_FRAME",
    "ProtocolError",
    "max_frame_bytes",
    "recv_frame",
    "send_frame",
]

#: Default per-frame payload ceiling (bytes); ``REPRO_SERVE_MAX_FRAME``
#: overrides.  Job params and results are small JSON documents — 8 MiB
#: is far above any legitimate frame while still refusing absurd
#: allocations from a corrupted length prefix.
DEFAULT_MAX_FRAME = 8 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(ConnectionError):
    """A malformed, truncated, or oversized frame on the wire."""


def max_frame_bytes() -> int:
    """The active frame-size ceiling (``REPRO_SERVE_MAX_FRAME`` or default)."""
    value = config.env_int_opt("REPRO_SERVE_MAX_FRAME")
    if value is None or value <= 0:
        return DEFAULT_MAX_FRAME
    return value


def send_frame(sock: socket.socket, obj: dict) -> None:
    """Serialize ``obj`` and write one frame to ``sock``.

    Raises :class:`ProtocolError` if the encoded payload exceeds the
    frame ceiling (the sender's bug — refuse it before the peer must).
    """
    payload = json.dumps(obj, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    limit = max_frame_bytes()
    if len(payload) > limit:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{limit}-byte ceiling (REPRO_SERVE_MAX_FRAME)")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on EOF at a frame boundary.

    EOF *inside* a frame (some bytes read, then the peer vanished) is a
    :class:`ProtocolError` — the stream is unrecoverable at that point.
    """
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one frame from ``sock``; ``None`` on clean EOF.

    Raises :class:`ProtocolError` on truncation, an oversized length
    prefix, invalid JSON, or a payload that is not a JSON object.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    limit = max_frame_bytes()
    if length > limit:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {limit}-byte ceiling "
            "(REPRO_SERVE_MAX_FRAME)")
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise ProtocolError("connection closed between header and payload")
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got "
            f"{type(obj).__name__}")
    return obj
