"""Job specifications, lifecycle handles, and the job-kind registry.

A *job* is one unit of pipeline work a client asks the daemon to run: a
:class:`JobSpec` names the kind (``compress`` / ``verify`` /
``hybrid-plan`` built in, tests register their own), carries
JSON-serializable parameters, and a scheduling priority.  The daemon
answers with a :class:`JobHandle` — the server-side state machine the
status/result/cancel/watch operations read.

Lifecycle::

    pending --> running --> done
       |           |    \\-> failed
       |           \\------> cancelled   (result discarded post hoc)
       \\------------------> cancelled   (dequeued before starting)

``done`` / ``failed`` / ``cancelled`` are terminal; every transition is
appended to :attr:`JobHandle.events` (state + monotonic timestamp) and
wakes :meth:`JobHandle.wait` and the daemon's ``watch`` streams.

Job functions take one ``params`` dict and return a JSON-serializable
result dict.  They execute inside :func:`execute_job` on an executor
worker — possibly a separate process — so the callable is shipped in the
:class:`JobPayload` itself (picklable by construction: built-in kinds
are module-level functions) rather than looked up in a registry the
worker may not share.  The registry exists only server-side, to resolve
a kind *name* to its callable at submit time.

The built-in kinds are thin wrappers over the paper pipeline: they build
(or reuse) the :class:`~repro.harness.experiments.ExperimentContext`
for the requested scale, so repeated jobs at one scale amortize the
ensemble build, and the artifact store (when active, its root travels in
the payload) caches the dycore run across worker processes too.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.parallel.clock import SYSTEM_CLOCK
from repro.store import artifact_key

__all__ = [
    "JobHandle",
    "JobPayload",
    "JobSpec",
    "STATES",
    "TERMINAL_STATES",
    "UnknownJobKind",
    "execute_job",
    "job_kinds",
    "register_job_kind",
    "resolve_job_kind",
]

#: Every state a job can report, in lifecycle order.
STATES = ("pending", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")


class UnknownJobKind(ValueError):
    """A submit named a kind no one registered."""


@dataclass(frozen=True)
class JobSpec:
    """What a client asked for: kind, parameters, and priority.

    ``priority`` orders the queue (smaller runs first, FIFO within a
    priority); ``params`` must be a JSON round-trippable dict — it is
    hashed into the cache key and travels over the wire verbatim.
    """

    kind: str
    params: dict = field(default_factory=dict)
    priority: int = 0

    def key(self) -> str:
        """Cache key: identical (kind, params) requests share results."""
        return artifact_key("serve.job", kind=self.kind,
                            params=self.params)


@dataclass(frozen=True)
class JobPayload:
    """Everything :func:`execute_job` needs inside a worker.

    Carrying the callable (not the kind name) keeps workers independent
    of the registry; carrying the store root lets a forked *or* spawned
    worker attach to the same artifact cache as the daemon.
    """

    fn: Callable[[dict], dict]
    params: dict
    store_root: str | None = None


def execute_job(payload: JobPayload) -> dict:
    """Run one job payload; the executor map's task function.

    Module-level (picklable) and total: any exception propagates to the
    executor, which charges the attempt and retries or degrades it to a
    :class:`~repro.parallel.failures.TaskFailure` per policy.
    """
    from repro import store

    store.adopt_root(payload.store_root)
    return payload.fn(payload.params)


# -- lifecycle handles --------------------------------------------------------


class JobHandle:
    """Server-side state of one submitted job.

    Thread-safe: transitions happen under one condition variable that
    also wakes :meth:`wait` and the daemon's watch streams.  Clients
    never see this object — they see :meth:`snapshot` dicts.
    """

    def __init__(self, job_id: str, spec: JobSpec,
                 cache_hit: bool = False) -> None:
        self.id = job_id
        self.spec = spec
        self.state = "pending"
        self.result: dict | None = None
        self.error: dict | None = None
        self.cache_hit = cache_hit
        self.cancel_requested = False
        #: Filled by the manager for queued jobs; ``None`` for
        #: cache-served ones that never reach a worker.
        self.payload: JobPayload | None = None
        #: The submitting request's trace context (when the client
        #: propagated one and tracing is on); the manager thread adopts
        #: it so execution spans join the client's trace.
        self.trace = None
        #: ``(state, monotonic timestamp)`` per transition, starting
        #: with the initial ``pending``.
        self.events: list[tuple[str, float]] = [
            ("pending", SYSTEM_CLOCK.now())
        ]
        self._cond = threading.Condition()

    # -- transitions (called by the manager) --------------------------------

    def transition(self, state: str, *, result: dict | None = None,
                   error: dict | None = None) -> None:
        """Move to ``state``, record the event, wake every waiter."""
        if state not in STATES:
            raise ValueError(f"unknown job state {state!r}")
        with self._cond:
            if self.state in TERMINAL_STATES:
                return  # terminal states are final; late writers lose
            self.state = state
            if result is not None:
                self.result = result
            if error is not None:
                self.error = error
            self.events.append((state, SYSTEM_CLOCK.now()))
            self._cond.notify_all()

    def request_cancel(self) -> None:
        """Flag the job for cancellation (the manager acts on it)."""
        with self._cond:
            self.cancel_requested = True
            self._cond.notify_all()

    # -- observation ---------------------------------------------------------

    @property
    def terminal(self) -> bool:
        """Whether the job reached ``done``/``failed``/``cancelled``."""
        return self.state in TERMINAL_STATES

    def wait(self, timeout: float | None = None) -> bool:
        """Block until terminal (or ``timeout``); True when terminal."""
        with self._cond:
            return self._cond.wait_for(lambda: self.terminal,
                                       timeout=timeout)

    def wait_events(self, seen: int,
                    timeout: float | None = None) -> list[dict]:
        """Events after index ``seen`` (blocking until one exists).

        The daemon's ``watch`` op calls this in a loop; an empty list
        means the timeout elapsed with no new transition.
        """
        with self._cond:
            self._cond.wait_for(lambda: len(self.events) > seen,
                                timeout=timeout)
            return [{"state": state, "t": t}
                    for state, t in self.events[seen:]]

    def timings(self) -> dict[str, float]:
        """Wait/run durations derived from the recorded transitions."""
        stamps = dict((state, t) for state, t in self.events)
        out: dict[str, float] = {}
        submitted = stamps.get("pending")
        started = stamps.get("running")
        ended = next((t for state, t in reversed(self.events)
                      if state in TERMINAL_STATES), None)
        if submitted is not None and started is not None:
            out["wait_s"] = started - submitted
        if started is not None and ended is not None:
            out["run_s"] = ended - started
        elif submitted is not None and ended is not None:
            out["wait_s"] = out.get("wait_s", ended - submitted)
        return out

    def snapshot(self) -> dict:
        """The JSON view of this job the protocol ships to clients."""
        with self._cond:
            snap: dict[str, Any] = {
                "id": self.id,
                "kind": self.spec.kind,
                "priority": self.spec.priority,
                "state": self.state,
                "cache_hit": self.cache_hit,
                "events": [{"state": state, "t": t}
                           for state, t in self.events],
            }
            snap.update(self.timings())
            if self.result is not None:
                snap["result"] = self.result
            if self.error is not None:
                snap["error"] = self.error
            return snap


# -- the kind registry --------------------------------------------------------

_REGISTRY_LOCK = threading.Lock()


def register_job_kind(name: str, fn: Callable[[dict], dict],
                      replace: bool = False) -> None:
    """Register ``fn`` as the handler for job kind ``name``.

    Built-in kinds cannot be silently shadowed; pass ``replace=True``
    to override (tests swapping in fault-wrapped handlers).
    """
    with _REGISTRY_LOCK:
        if name in _KINDS and not replace:
            raise ValueError(f"job kind {name!r} is already registered")
        _KINDS[name] = fn


def resolve_job_kind(name: str) -> Callable[[dict], dict]:
    """The handler for ``name``; :class:`UnknownJobKind` if absent."""
    with _REGISTRY_LOCK:
        fn = _KINDS.get(name)
    if fn is None:
        raise UnknownJobKind(
            f"unknown job kind {name!r}; registered kinds: "
            f"{', '.join(job_kinds())}")
    return fn


def job_kinds() -> list[str]:
    """Registered kind names, sorted."""
    with _REGISTRY_LOCK:
        return sorted(_KINDS)


# -- built-in kinds -----------------------------------------------------------


def _scale_config(params: dict):
    """The ReproConfig a job's scale parameters select (bench default)."""
    from repro.config import bench_scale

    return bench_scale().with_scale(
        ne=params.get("ne"), nlev=params.get("nlev"),
        n_members=params.get("members"),
    )


def _context(params: dict):
    from repro.harness.experiments import ExperimentContext

    return ExperimentContext.create(_scale_config(params))


def run_compress(params: dict) -> dict:
    """``compress``: round-trip one variable through one codec variant.

    Params: ``variant`` (required), ``variable`` (default ``"U"``), and
    the scale knobs ``ne``/``nlev``/``members``.
    """
    from repro.compressors import get_variant

    codec = get_variant(params["variant"])
    ctx = _context(params)
    variable = params.get("variable", "U")
    outcome = codec.roundtrip(ctx.member_field(variable))
    max_err = float(abs(outcome.reconstructed
                        - ctx.member_field(variable)).max())
    return {
        "variant": params["variant"],
        "variable": variable,
        "cr": float(outcome.cr),
        "bytes_in": int(outcome.original_nbytes),
        "bytes_out": int(outcome.compressed_nbytes),
        "max_abs_err": max_err,
    }


def run_verify(params: dict) -> dict:
    """``verify``: the four acceptance tests for one codec variant.

    Params: ``variant`` (required), ``variables`` (default: the
    featured four), ``bias`` (default False — the whole-ensemble bias
    test is the slow one), and the scale knobs.
    """
    from repro.compressors import get_variant

    ctx = _context(params)
    variables = params.get("variables") or list(ctx.featured)
    report = ctx.pvt.evaluate_codec(
        get_variant(params["variant"]), variables=variables,
        run_bias=bool(params.get("bias", False)),
    )
    verdicts = {
        name: {
            "rho": bool(v.rho.passed),
            "rmsz": bool(v.rmsz.passed),
            "enmax": bool(v.enmax.passed),
            "bias": None if v.bias is None else bool(v.bias.passed),
            "all": bool(v.all_passed),
            "cr": float(v.mean_cr),
        }
        for name, v in report.verdicts.items()
    }
    return {
        "variant": params["variant"],
        "verdicts": verdicts,
        "pass_counts": report.pass_counts(),
        "failures": {name: str(f)
                     for name, f in report.failures.items()},
    }


def run_hybrid_plan(params: dict) -> dict:
    """``hybrid-plan``: per-variable variant selection for one family.

    Params: ``family`` (required, e.g. ``"fpzip"``), ``bias``
    (default False), ``extended_apax`` (default False), scale knobs.
    """
    from repro.hybrid.selector import build_hybrid

    ctx = _context(params)
    result = build_hybrid(
        ctx.ensemble, params["family"],
        run_bias=bool(params.get("bias", False)),
        extended_apax=bool(params.get("extended_apax", False)),
    )
    summary = {k: float(v) for k, v in result.summary().items()}
    return {
        "family": params["family"],
        "choices": {c.variable: c.variant
                    for c in result.choices.values()},
        "summary": summary,
    }


#: kind name -> handler.  Seeded with the built-ins; tests extend it via
#: :func:`register_job_kind`.  Server-side only — never read by workers.
_KINDS: dict[str, Callable[[dict], dict]] = {
    "compress": run_compress,
    "verify": run_verify,
    "hybrid-plan": run_hybrid_plan,
}
