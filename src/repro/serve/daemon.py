"""The socket daemon: frames in, job lifecycle out.

:class:`ReproServer` binds a TCP (default, loopback) or Unix-domain
listener, accepts any number of client connections, and serves each on
its own thread.  Every request frame carries an ``op``; every response
carries ``ok`` plus op-specific fields.  The operations:

=========  =================================================================
op         behaviour
=========  =================================================================
ping       liveness probe; echoes the registered job kinds
submit     admit a job (``kind``/``params``/``priority``); replies with the
           job snapshot, or ``busy`` + ``retry_after`` when the queue is
           full
status     one snapshot of a job by ``id``
result     block (up to ``timeout``) until the job is terminal, then reply
           with the snapshot
cancel     request cancellation; ``cancelled`` reports whether it took
jobs       snapshots of every job the daemon knows, submission order
kinds      the registered job-kind names
watch      stream ``event`` frames as the job transitions, ending with a
           ``final`` snapshot frame once terminal
metrics    a Prometheus-style text snapshot of the manager's live
           telemetry (plus traced subsystems when ``REPRO_TRACE`` is on)
shutdown   begin graceful shutdown (``drain`` true by default) and ack
=========  =================================================================

``submit`` additionally accepts a ``trace`` object (``trace_id`` /
``span_id``) — the client's propagated trace context, adopted so the
job's server-side and worker-side spans join the client's trace.

Failure shape: ``{"ok": false, "error": <code>, "message": ...}`` where
``code`` is one of ``bad-request``, ``unknown-op``, ``unknown-job``,
``unknown-kind``, ``busy`` (adds ``retry_after``), or ``shutting-down``.
A protocol violation (undecodable frame) ends only that connection;
other clients and the manager are untouched.

The daemon *process* model matters: connection handlers and queue
workers are threads in the daemon, but job bodies run inside the
executor's disposable worker processes, so the blast radius of a
crashing job is one task attempt.  See ``docs/serving.md``.
"""

from __future__ import annotations

import contextlib
import os
import socket
import threading

from repro import config, obs
from repro.obs import telemetry
from repro.serve.jobs import UnknownJobKind, JobSpec, job_kinds
from repro.serve.manager import JobManager, ServerBusy
from repro.serve.protocol import ProtocolError, recv_frame, send_frame

__all__ = ["ReproServer", "default_address"]

DEFAULT_HOST = "127.0.0.1"

#: How long one ``result`` / ``watch`` call may block before replying
#: with whatever state it has (clients re-issue to keep waiting).
MAX_BLOCK_S = 30.0


def default_address() -> tuple[str | None, str, int]:
    """(unix socket path | None, host, port) from ``REPRO_SERVE_*``."""
    path = config.env_str("REPRO_SERVE_SOCKET") or None
    host = config.env_str("REPRO_SERVE_HOST") or DEFAULT_HOST
    port = config.env_int_opt("REPRO_SERVE_PORT") or 0
    return path, host, port


class ReproServer:
    """Accepts connections and maps protocol frames onto a manager."""

    def __init__(self, manager: JobManager | None = None, *,
                 host: str = DEFAULT_HOST, port: int = 0,
                 socket_path: str | None = None) -> None:
        self.manager = manager if manager is not None else JobManager()
        self.socket_path = socket_path
        if socket_path is not None:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(socket_path)
            self._listener = socket.socket(socket.AF_UNIX,
                                           socket.SOCK_STREAM)
            self._listener.bind(socket_path)
            self._listener.listen()
            self.address: str | tuple[str, int] = socket_path
        else:
            self._listener = socket.create_server((host, port))
            self.address = self._listener.getsockname()[:2]
        self._listener.settimeout(0.2)
        self._stop = threading.Event()
        self._drain = True
        self._conn_threads: list[threading.Thread] = []
        self._accept_thread: threading.Thread | None = None

    # -- running --------------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept and serve until :meth:`request_shutdown`; then drain."""
        self.manager.start()
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = self._listener.accept()
                except TimeoutError:
                    continue
                except OSError:
                    break
                t = threading.Thread(target=self._serve_connection,
                                     args=(conn,), daemon=True)
                t.start()
                self._conn_threads.append(t)
        finally:
            self._wind_down()

    def serve_in_thread(self) -> threading.Thread:
        """Run :meth:`serve_forever` on a daemon thread (tests, CLI)."""
        t = threading.Thread(target=self.serve_forever,
                             name="repro-serve", daemon=True)
        t.start()
        self._accept_thread = t
        return t

    def request_shutdown(self, drain: bool = True) -> None:
        """Flag the accept loop to exit; safe from any thread/signal."""
        self._drain = drain
        self._stop.set()

    def close(self, drain: bool = True,
              timeout: float | None = 10.0) -> None:
        """Shut down and wait for the accept loop to finish."""
        self.request_shutdown(drain=drain)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)

    def _wind_down(self) -> None:
        self._listener.close()
        self.manager.shutdown(drain=self._drain)
        for t in self._conn_threads:
            t.join(timeout=1.0)
        if self.socket_path is not None:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self.socket_path)

    # -- per-connection loop --------------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while True:
                try:
                    request = recv_frame(conn)
                except ProtocolError:
                    return  # this stream is unrecoverable; drop it
                if request is None:
                    return
                try:
                    done = self._dispatch(conn, request)
                except (BrokenPipeError, ConnectionResetError,
                        ProtocolError):
                    return
                if done:
                    return

    def _dispatch(self, conn: socket.socket, request: dict) -> bool:
        """Handle one request; True when the connection should close."""
        op = request.get("op")
        handler = getattr(self, f"_op_{str(op).replace('-', '_')}", None)
        if op is None or handler is None:
            send_frame(conn, {
                "ok": False, "error": "unknown-op",
                "message": f"unknown op {op!r}",
            })
            return False
        return bool(handler(conn, request))

    # -- operations -----------------------------------------------------------

    def _op_ping(self, conn: socket.socket, request: dict) -> bool:
        send_frame(conn, {"ok": True, "kinds": job_kinds()})
        return False

    def _op_kinds(self, conn: socket.socket, request: dict) -> bool:
        send_frame(conn, {"ok": True, "kinds": job_kinds()})
        return False

    def _op_submit(self, conn: socket.socket, request: dict) -> bool:
        kind = request.get("kind")
        params = request.get("params") or {}
        if not isinstance(kind, str) or not isinstance(params, dict):
            send_frame(conn, {
                "ok": False, "error": "bad-request",
                "message": "submit needs a string 'kind' and an object "
                           "'params'",
            })
            return False
        spec = JobSpec(kind=kind, params=params,
                       priority=int(request.get("priority", 0)))
        trace = obs.TraceContext.from_wire(request.get("trace"))
        try:
            handle = self.manager.submit(spec, trace=trace)
        except UnknownJobKind as exc:
            send_frame(conn, {"ok": False, "error": "unknown-kind",
                              "message": str(exc)})
            return False
        except ServerBusy as exc:
            send_frame(conn, {"ok": False, "error": "busy",
                              "message": str(exc),
                              "retry_after": exc.retry_after})
            return False
        except RuntimeError as exc:
            send_frame(conn, {"ok": False, "error": "shutting-down",
                              "message": str(exc)})
            return False
        send_frame(conn, {"ok": True, "job": handle.snapshot()})
        return False

    def _handle_for(self, conn: socket.socket, request: dict):
        job_id = request.get("id")
        handle = (self.manager.get(job_id)
                  if isinstance(job_id, str) else None)
        if handle is None:
            send_frame(conn, {"ok": False, "error": "unknown-job",
                              "message": f"unknown job id {job_id!r}"})
        return handle

    def _op_status(self, conn: socket.socket, request: dict) -> bool:
        handle = self._handle_for(conn, request)
        if handle is not None:
            send_frame(conn, {"ok": True, "job": handle.snapshot()})
        return False

    def _op_result(self, conn: socket.socket, request: dict) -> bool:
        handle = self._handle_for(conn, request)
        if handle is None:
            return False
        timeout = min(float(request.get("timeout", MAX_BLOCK_S)),
                      MAX_BLOCK_S)
        finished = handle.wait(timeout=timeout)
        send_frame(conn, {"ok": True, "done": finished,
                          "job": handle.snapshot()})
        return False

    def _op_cancel(self, conn: socket.socket, request: dict) -> bool:
        handle = self._handle_for(conn, request)
        if handle is not None:
            took = self.manager.cancel(handle.id)
            send_frame(conn, {"ok": True, "cancelled": took,
                              "job": handle.snapshot()})
        return False

    def _op_jobs(self, conn: socket.socket, request: dict) -> bool:
        send_frame(conn, {
            "ok": True,
            "jobs": [h.snapshot() for h in self.manager.jobs()],
        })
        return False

    def _op_watch(self, conn: socket.socket, request: dict) -> bool:
        handle = self._handle_for(conn, request)
        if handle is None:
            return False
        timeout = min(float(request.get("timeout", MAX_BLOCK_S)),
                      MAX_BLOCK_S)
        seen = 0
        while True:
            events = handle.wait_events(seen, timeout=timeout)
            seen += len(events)
            for event in events:
                send_frame(conn, {"ok": True, "event": event})
            if handle.terminal or not events:
                break
        send_frame(conn, {"ok": True, "final": True,
                          "job": handle.snapshot()})
        return False

    def _op_metrics(self, conn: socket.socket, request: dict) -> bool:
        text = telemetry.exposition(self.manager.telemetry())
        send_frame(conn, {"ok": True, "metrics": text})
        return False

    def _op_shutdown(self, conn: socket.socket, request: dict) -> bool:
        drain = bool(request.get("drain", True))
        send_frame(conn, {"ok": True, "draining": drain})
        self.request_shutdown(drain=drain)
        return True
