"""Synthetic CESM/CAM substrate.

The paper's data source is CESM 1.1 with an active CAM5 atmosphere: 170
history-file variables (83 two-dimensional + 87 three-dimensional) on the
ne=30 spectral-element grid, and the CESM-PVT ensemble of 101 one-year
simulations differing only by an O(1e-14) perturbation of the initial
atmospheric temperature.

This package substitutes a laptop-scale equivalent with the properties the
methodology actually exercises:

- a genuinely *chaotic* dynamical core (Lorenz-96, RK4-integrated,
  vectorized across ensemble members) so that 1e-14 initial perturbations
  diverge to independent-looking — but statistically identical — states;
- a *diverse* variable catalog: magnitudes from O(1e-8) to O(1e4),
  smooth winds and noisy concentrations, lognormal tracers, fields with
  CESM's 1e35 fill values, and the paper's four featured variables (U, Z3,
  FSDSC, CCN3) tuned to their Table 2 characteristics;
- single-precision history output on the cubed-sphere grid.
"""

from repro.model.variables import VariableSpec, build_catalog, featured_variables
from repro.model.dycore import Lorenz96, DycoreRun
from repro.model.physics import FieldSynthesizer
from repro.model.cam import CAMModel
from repro.model.ensemble import CAMEnsemble

__all__ = [
    "VariableSpec",
    "build_catalog",
    "featured_variables",
    "Lorenz96",
    "DycoreRun",
    "FieldSynthesizer",
    "CAMModel",
    "CAMEnsemble",
]
