"""The CAM-like history model: one object tying grid, levels, catalog,
dycore, and field synthesis together.

A :class:`CAMModel` owns everything that is *member-independent*.  Member
fields and full history snapshots are produced on demand from a
:class:`~repro.model.dycore.DycoreRun`'s coefficient rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import ReproConfig
from repro.grid.cubed_sphere import CubedSphereGrid
from repro.grid.levels import HybridLevels
from repro.model.dycore import Lorenz96
from repro.model.physics import FieldSynthesizer
from repro.model.variables import VariableSpec, build_catalog

__all__ = ["CAMModel"]


@dataclass
class CAMModel:
    """Member-independent model state.

    Build with :meth:`from_config`; then :meth:`run_dycore` integrates the
    ensemble and per-member fields come from :meth:`fields_for`.
    """

    config: ReproConfig
    grid: CubedSphereGrid
    levels: HybridLevels
    catalog: tuple[VariableSpec, ...]
    dycore: Lorenz96
    synthesizer: FieldSynthesizer
    _by_name: dict[str, VariableSpec] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._by_name = {spec.name: spec for spec in self.catalog}

    @classmethod
    def from_config(cls, config: ReproConfig) -> "CAMModel":
        """Build grid, levels, catalog, dycore, and synthesizer from ``config``."""
        grid = CubedSphereGrid.create(config.ne)
        levels = HybridLevels.create(config.nlev)
        catalog = build_catalog(config.n_2d, config.n_3d)
        dycore = Lorenz96(base_seed=config.base_seed)
        synthesizer = FieldSynthesizer(
            grid=grid,
            levels=levels,
            n_coefficients=3 * dycore.n_modes,
            base_seed=config.base_seed,
        )
        return cls(
            config=config,
            grid=grid,
            levels=levels,
            catalog=catalog,
            dycore=dycore,
            synthesizer=synthesizer,
        )

    def spec(self, name: str) -> VariableSpec:
        """Look up a catalog variable by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"variable {name!r} not in catalog "
                f"({len(self.catalog)} variables)"
            ) from None

    @property
    def variable_names(self) -> tuple[str, ...]:
        """Catalog variable names, in catalog order."""
        return tuple(spec.name for spec in self.catalog)

    def run_dycore(self, n_members: int | None = None):
        """Integrate the chaotic dycore for the configured ensemble."""
        if n_members is None:
            n_members = self.config.n_members
        return self.dycore.run_ensemble(n_members)

    def fields_for(
        self,
        spec: VariableSpec | str,
        coefficients: np.ndarray,
        member_ids,
    ) -> np.ndarray:
        """Synthesize fields for members given their coefficient rows."""
        if isinstance(spec, str):
            spec = self.spec(spec)
        return self.synthesizer.synthesize(spec, coefficients, member_ids)

    def history_snapshot(
        self, coefficients_row: np.ndarray, member_id: int
    ) -> dict[str, np.ndarray]:
        """All catalog variables for one member (a CAM history time slice)."""
        snapshot: dict[str, np.ndarray] = {}
        coeff = np.atleast_2d(coefficients_row)
        for spec in self.catalog:
            snapshot[spec.name] = self.fields_for(spec, coeff, [member_id])[0]
        return snapshot
