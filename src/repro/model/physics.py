"""Spatial field synthesis: dycore statistics -> gridded CAM variables.

Each variable's field is built from three member-independent ingredients —
a fixed climatology pattern, a fixed set of spatial anomaly modes, and the
variable's magnitude mapping — plus two member-dependent ones: the
standardized dycore coefficients (chaotic, shared climatology) and seeded
grid-scale noise (guaranteeing nonzero ensemble variance at every point,
which the PVT's Z-scores require).

    raw_m(x)  = climatology(x)
              + variability * sum_k w_k c_{m,sigma(k)} Phi_k(x)
              + noise * eta_m(x)

    field_m   = loc + scale * raw_m               (kind = "linear")
              = exp(loc + scale * raw_m)          (kind = "lognormal")
              = height(z) + scale * raw_m         (kind = "height")

The anomaly modes ``Phi_k`` are smooth spherical wave products whose
spectral decay follows the variable's ``smoothness``; ``sigma`` is a
variable-specific permutation of the dycore coefficient vector, so
different variables respond to different facets of the chaotic state.
All members are synthesized in one einsum.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.config import FILL_VALUE
from repro.grid.cubed_sphere import CubedSphereGrid
from repro.grid.levels import HybridLevels
from repro.model.variables import VariableSpec

__all__ = ["FieldSynthesizer"]

_MAX_MODES = 48
_MASK_FRACTION = {"land": 0.3, "ocean": 0.65}


def _name_seed(name: str) -> int:
    """Stable integer tag for a variable name (used in seed tuples)."""
    return zlib.crc32(name.encode("utf-8"))


class FieldSynthesizer:
    """Builds gridded fields for every variable from member coefficients."""

    def __init__(
        self,
        grid: CubedSphereGrid,
        levels: HybridLevels,
        n_coefficients: int,
        base_seed: int = 0,
    ):
        if n_coefficients < 1:
            raise ValueError("n_coefficients must be positive")
        self.grid = grid
        self.levels = levels
        self.n_coefficients = n_coefficients
        self.base_seed = base_seed
        self._latr = np.deg2rad(grid.lat)
        self._lonr = np.deg2rad(grid.lon)
        self._z_norm = (
            np.arange(levels.nlev, dtype=np.float64) / max(levels.nlev - 1, 1)
        )
        self._height = levels.height_profile()
        self._var_cache: dict[str, dict] = {}

    # -- per-variable machinery ------------------------------------------

    def _modes(self, spec: VariableSpec) -> dict:
        """Deterministic per-variable mode set (cached)."""
        cached = self._var_cache.get(spec.name)
        if cached is not None:
            return cached

        rng = np.random.default_rng(
            (self.base_seed, 0x5059, _name_seed(spec.name))
        )
        k = min(_MAX_MODES, self.n_coefficients)
        decay_power = 1.0 + 3.0 * spec.smoothness
        # Wavenumber content is *absolute* (planetary through synoptic
        # scales, as in real CAM output), capped at 32; at coarse bench
        # grids the cap drops to a third of the zonal Nyquist so the high
        # modes do not alias into grid-scale noise.  Consequence: at the
        # paper's ne=30 the fields are genuinely smooth at grid scale
        # (adjacent-point differences ~1% of range, like 1-degree CAM),
        # while coarse grids under-resolve the same spectrum — predictive
        # codecs gain with resolution exactly as they do on real data.
        nyquist = 2 * self.grid.ne * (self.grid.np_ - 1)
        l_cap = min(32, max(3, nyquist // 3))

        def wave_bank(n: int) -> tuple[np.ndarray, np.ndarray]:
            """n horizontal modes (n, ncol) and vertical factors (n, nlev)."""
            # Total wavenumber grows with mode index; smooth variables put
            # almost all weight on the first (planetary) modes.
            ramp = np.minimum(1 + (np.arange(n) * l_cap) // n, l_cap)
            l_lon = ramp + rng.integers(0, 2, n)
            m_lat = np.maximum(ramp // 2, 1) + rng.integers(0, 2, n)
            ph_lon = rng.uniform(0, 2 * np.pi, n)
            ph_lat = rng.uniform(0, 2 * np.pi, n)
            horiz = np.cos(
                l_lon[:, None] * self._lonr[None, :] + ph_lon[:, None]
            ) * np.cos(m_lat[:, None] * self._latr[None, :] + ph_lat[:, None])
            v_num = rng.integers(0, 4, n)
            ph_v = rng.uniform(0, 2 * np.pi, n)
            vert = np.cos(
                np.pi * v_num[:, None] * self._z_norm[None, :] + ph_v[:, None]
            )
            return horiz, vert

        # Climatology: fixed pattern with unit spatial standard deviation.
        clim_h, clim_v = wave_bank(k)
        w0 = (np.arange(k) + 1.0) ** (-decay_power) * rng.standard_normal(k)
        if spec.is_3d:
            clim = np.einsum("k,kz,kx->zx", w0, clim_v, clim_h)
        else:
            clim = w0 @ clim_h
        clim_std = float(clim.std())
        if clim_std == 0.0:
            raise AssertionError(f"{spec.name}: degenerate climatology")
        clim = clim / clim_std

        # Anomaly modes, normalized so the member anomaly has unit variance
        # when the coefficients are standardized.
        anom_h, anom_v = wave_bank(k)
        w = (np.arange(k) + 1.0) ** (-decay_power) * rng.standard_normal(k)
        if spec.is_3d:
            mode_ms = np.mean((anom_v[:, :, None] * anom_h[:, None, :]) ** 2,
                              axis=(1, 2))
        else:
            mode_ms = np.mean(anom_h**2, axis=1)
        norm = float(np.sqrt(np.sum(w**2 * mode_ms)))
        if norm == 0.0:
            raise AssertionError(f"{spec.name}: degenerate anomaly modes")
        w = w / norm
        sigma = rng.permutation(self.n_coefficients)[:k]

        mask = None
        if spec.fill_mask != "none":
            mask = self._fill_mask(spec, rng)

        cached = {
            "clim": clim,
            "w": w,
            "anom_h": anom_h,
            "anom_v": anom_v,
            "sigma": sigma,
            "mask": mask,
        }
        self._var_cache[spec.name] = cached
        return cached

    def _fill_mask(self, spec: VariableSpec,
                   rng: np.random.Generator) -> np.ndarray:
        """Fixed horizontal fill mask (a smooth 'continent' pattern)."""
        pattern = np.zeros(self.grid.ncol)
        for _ in range(6):
            l, m = rng.integers(1, 4, 2)
            a, b = rng.uniform(0, 2 * np.pi, 2)
            pattern += np.cos(l * self._lonr + a) * np.cos(m * self._latr + b)
        frac = _MASK_FRACTION[spec.fill_mask]
        threshold = np.quantile(pattern, 1.0 - frac)
        return pattern > threshold

    # -- synthesis ---------------------------------------------------------

    def synthesize(
        self,
        spec: VariableSpec,
        coefficients: np.ndarray,
        member_ids: np.ndarray | list[int],
    ) -> np.ndarray:
        """Fields for the given members.

        Parameters
        ----------
        spec:
            Variable to synthesize.
        coefficients:
            ``(n_members, n_coefficients)`` standardized dycore statistics.
        member_ids:
            Global member indices (seed the per-member noise); length must
            match ``coefficients``.

        Returns
        -------
        ``(n_members, nlev, ncol)`` float32 for 3-D variables,
        ``(n_members, ncol)`` for 2-D.
        """
        coefficients = np.atleast_2d(np.asarray(coefficients, dtype=np.float64))
        member_ids = np.asarray(member_ids, dtype=np.int64)
        if coefficients.shape[0] != member_ids.shape[0]:
            raise ValueError(
                f"{coefficients.shape[0]} coefficient rows vs "
                f"{member_ids.shape[0]} member ids"
            )
        if coefficients.shape[1] != self.n_coefficients:
            raise ValueError(
                f"expected {self.n_coefficients} coefficients per member, "
                f"got {coefficients.shape[1]}"
            )
        modes = self._modes(spec)
        g = coefficients[:, modes["sigma"]] * modes["w"][None, :]

        if spec.is_3d:
            anomaly = np.einsum("mk,kz,kx->mzx", g, modes["anom_v"],
                                modes["anom_h"])
        else:
            anomaly = g @ modes["anom_h"]

        raw = modes["clim"][None, ...] + spec.variability * anomaly
        for i, member in enumerate(member_ids):
            rng = np.random.default_rng(
                (self.base_seed, 0x4E5A, _name_seed(spec.name), int(member))
            )
            raw[i] += spec.noise * self._member_noise(spec, rng)

        field = self._apply_kind(spec, raw)
        if modes["mask"] is not None:
            field[..., modes["mask"]] = FILL_VALUE
        return field.astype(np.float32)

    def _member_noise(self, spec: VariableSpec,
                      rng: np.random.Generator) -> np.ndarray:
        """Member-specific internal-variability field, unit variance.

        Annual-mean climate fields carry *spatially correlated* internal
        variability, not white grid-scale noise: each member gets its own
        random superposition of smooth modes (random wavenumbers up to the
        grid-appropriate cap, random phases).  This keeps the ensemble
        spread nonzero at every grid point — what the PVT's Z-scores need
        — while staying smooth at grid scale like real CAM output.
        """
        n_modes = 16
        nyquist = 2 * self.grid.ne * (self.grid.np_ - 1)
        l_cap = min(32, max(3, nyquist // 3))
        l_lon = rng.integers(1, l_cap + 1, n_modes)
        m_lat = rng.integers(1, max(l_cap // 2, 2), n_modes)
        ph_lon = rng.uniform(0, 2 * np.pi, n_modes)
        ph_lat = rng.uniform(0, 2 * np.pi, n_modes)
        w = rng.standard_normal(n_modes)
        horiz = np.cos(
            l_lon[:, None] * self._lonr[None, :] + ph_lon[:, None]
        ) * np.cos(m_lat[:, None] * self._latr[None, :] + ph_lat[:, None])
        if spec.is_3d:
            v_num = rng.integers(0, 4, n_modes)
            ph_v = rng.uniform(0, 2 * np.pi, n_modes)
            vert = np.cos(
                np.pi * v_num[:, None] * self._z_norm[None, :]
                + ph_v[:, None]
            )
            field = np.einsum("k,kz,kx->zx", w, vert, horiz)
        else:
            field = w @ horiz
        std = float(field.std())
        if std == 0.0:  # vanishingly unlikely; keep the variance floor
            return rng.standard_normal(field.shape)
        return field / std

    def _apply_kind(self, spec: VariableSpec, raw: np.ndarray) -> np.ndarray:
        if spec.kind == "linear":
            return spec.loc + spec.scale * raw
        if spec.kind == "lognormal":
            exponent = spec.loc + spec.scale * raw
            if spec.vert_decay and spec.is_3d:
                # Levels are ordered top-of-model first (z_norm = 0 at the
                # top): tracers decay away from the surface.
                exponent = exponent - spec.vert_decay * (
                    1.0 - self._z_norm[None, :, None]
                )
            return np.exp(exponent)
        if spec.kind == "height":
            if not spec.is_3d:
                raise ValueError(f"{spec.name}: 'height' requires a 3D variable")
            return self._height[None, :, None] + spec.scale * raw
        raise AssertionError(f"unhandled kind {spec.kind!r}")
