"""Chaotic dynamical core: the Lorenz-96 system.

The CESM-PVT rests on one dynamical fact (paper Section 4.3): an O(1e-14)
perturbation of the initial state is *not* climate-changing, yet "due to
the nonlinear properties of this model, the trajectories of the ensemble
members will rapidly diverge" while "the statistical properties of the
ensemble members are expected to be the same".

The Lorenz-96 system

    dX_j/dt = (X_{j+1} - X_{j-2}) X_{j-1} - X_j + F

with ``F = 8`` is the canonical minimal model with exactly that behaviour
(leading Lyapunov exponent ~1.67 per model time unit, so 1e-14 errors
saturate after ~20 units).  We integrate all ensemble members at once with
a vectorized RK4 scheme, spin the base state onto the attractor, perturb
member ``m``'s state by ``1e-14 * N(0,1)`` (seeded by ``m``), integrate a
"model year", and summarize each member by a vector of *windowed time
statistics* (means, variances, lag covariances of the modes).  Those
coefficient vectors drive the spatial field synthesis in
:mod:`repro.model.physics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = ["Lorenz96", "DycoreRun", "PERTURBATION_SCALE"]

#: Magnitude of the initial-condition perturbation (paper: O(1e-14) on the
#: initial atmospheric temperature).
PERTURBATION_SCALE = 1.0e-14

_FORCING = 8.0
_DT = 0.05  # ~6 simulated hours per step in the usual L96 analogy
_SPINUP_STEPS = 2000
#: One "model year": 73 time units; statistics are windowed over the final
#: 40 units, well after 1e-14 perturbations have saturated (~20 units).
_YEAR_STEPS = 1460
_WINDOW_STEPS = 800


def _rhs(x: np.ndarray, forcing: float) -> np.ndarray:
    """Lorenz-96 tendency, vectorized over leading axes."""
    return (np.roll(x, -1, axis=-1) - np.roll(x, 2, axis=-1)) * np.roll(
        x, 1, axis=-1
    ) - x + forcing


@dataclass(frozen=True)
class DycoreRun:
    """Outcome of integrating the ensemble.

    Attributes
    ----------
    coefficients:
        ``(n_members, n_coefficients)`` standardized member statistics;
        row ``m`` drives member ``m``'s fields.
    final_states:
        ``(n_members, n_modes)`` end-of-year states (for divergence tests).
    """

    coefficients: np.ndarray
    final_states: np.ndarray

    @property
    def n_members(self) -> int:
        """Number of ensemble members integrated."""
        return self.coefficients.shape[0]

    @property
    def n_coefficients(self) -> int:
        """Standardized statistics per member (3 x n_modes)."""
        return self.coefficients.shape[1]


class Lorenz96:
    """Vectorized Lorenz-96 integrator and ensemble statistic extractor.

    Parameters
    ----------
    n_modes:
        State dimension K (default 40, the classic configuration).
    forcing:
        Forcing constant F (default 8.0, chaotic regime).
    base_seed:
        Seed for the deterministic base initial condition and member
        perturbations.
    """

    def __init__(self, n_modes: int = 40, forcing: float = _FORCING,
                 base_seed: int = 0):
        if n_modes < 4:
            raise ValueError(f"Lorenz-96 needs at least 4 modes, got {n_modes}")
        self.n_modes = n_modes
        self.forcing = float(forcing)
        self.base_seed = base_seed

    # -- integration ------------------------------------------------------

    def step(self, x: np.ndarray, dt: float = _DT) -> np.ndarray:
        """One RK4 step for state array ``x`` (vectorized over members)."""
        k1 = _rhs(x, self.forcing)
        k2 = _rhs(x + 0.5 * dt * k1, self.forcing)
        k3 = _rhs(x + 0.5 * dt * k2, self.forcing)
        k4 = _rhs(x + dt * k3, self.forcing)
        return x + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)

    def integrate(self, x: np.ndarray, n_steps: int,
                  dt: float = _DT) -> np.ndarray:
        """Integrate ``n_steps`` and return the final state."""
        if n_steps < 0:
            raise ValueError(f"n_steps must be non-negative, got {n_steps}")
        for _ in range(n_steps):
            x = self.step(x, dt)
        return x

    def base_state(self) -> np.ndarray:
        """Deterministic on-attractor base initial condition."""
        rng = np.random.default_rng(self.base_seed)
        x = self.forcing + 0.01 * rng.standard_normal(self.n_modes)
        return self.integrate(x, _SPINUP_STEPS)

    def perturbed_states(self, n_members: int,
                         scale: float = PERTURBATION_SCALE) -> np.ndarray:
        """Base state plus per-member O(``scale``) perturbations."""
        if n_members < 1:
            raise ValueError(f"n_members must be positive, got {n_members}")
        base = self.base_state()
        states = np.tile(base, (n_members, 1))
        for m in range(n_members):
            rng = np.random.default_rng((self.base_seed, 7919, m))
            states[m] += scale * rng.standard_normal(self.n_modes)
        return states

    # -- member statistics --------------------------------------------------

    def _windowed_stats(self, x: np.ndarray,
                        dt: float = _DT) -> tuple[np.ndarray, np.ndarray]:
        """Integrate a model year and summarize the statistics window.

        ``x`` is ``(..., n_modes)``.  Returns ``(stats, final_state)`` with
        stats of shape ``(..., 3 * n_modes)``: per-mode time mean, time
        variance, and lag-1-mode covariance over the final window.  These
        are the "annual averages of output" the PVT works from.
        """
        x = self.integrate(x, _YEAR_STEPS - _WINDOW_STEPS, dt)
        n = _WINDOW_STEPS
        s1 = np.zeros_like(x)
        s2 = np.zeros_like(x)
        s_cov = np.zeros_like(x)
        for _ in range(n):
            x = self.step(x, dt)
            s1 += x
            s2 += x * x
            s_cov += x * np.roll(x, -1, axis=-1)
        mean = s1 / n
        var = s2 / n - mean**2
        cov = s_cov / n - mean * np.roll(mean, -1, axis=-1)
        return np.concatenate([mean, var, cov], axis=-1), x

    def _reference_moments(self) -> tuple[np.ndarray, np.ndarray]:
        """Climatological mean/std of the windowed statistics.

        Estimated once from a long control integration chopped into
        disjoint windows; used to standardize member coefficients so the
        field synthesis receives O(1) inputs with member-independent
        normalization.  Cached process-wide: the control run is identical
        for every ensemble with the same (n_modes, forcing, base_seed).
        """
        return _reference_moments_cached(
            self.n_modes, self.forcing, self.base_seed
        )

    def run_ensemble(self, n_members: int,
                     scale: float = PERTURBATION_SCALE) -> DycoreRun:
        """Integrate ``n_members`` perturbed members for one model year.

        Returns standardized coefficient vectors (mean 0, std ~1 w.r.t. the
        control climatology) and final states.
        """
        states = self.perturbed_states(n_members, scale)
        stats, final = self._windowed_stats(states)
        ref_mean, ref_std = self._reference_moments()
        coefficients = (stats - ref_mean) / ref_std
        return DycoreRun(coefficients=coefficients, final_states=final)


@lru_cache(maxsize=8)
def _reference_moments_cached(
    n_modes: int, forcing: float, base_seed: int
) -> tuple[np.ndarray, np.ndarray]:
    model = Lorenz96(n_modes=n_modes, forcing=forcing, base_seed=base_seed)
    n_windows = 24
    x = model.base_state()
    # Decorrelate the control run from the ensemble start.
    x = model.integrate(x, 200)
    samples = np.empty((n_windows, 3 * n_modes))
    for w in range(n_windows):
        samples[w], x = model._windowed_stats(x)
    mean = samples.mean(axis=0)
    std = samples.std(axis=0, ddof=1)
    std = np.where(std > 0, std, 1.0)
    return mean, std
