"""The CAM variable catalog.

Each :class:`VariableSpec` describes one history-file variable: its
dimensionality, units, target magnitude distribution, spatial smoothness,
ensemble variability, and fill-value masking.  The catalog reproduces the
paper's setup of 83 two-dimensional and 87 three-dimensional variables and
pins the four featured variables (Table 2) to their published
characteristics:

=========  =====  ========  =========  ========  ========  =====
Variable   units  x_min     x_max      mean      std       CR
=========  =====  ========  =========  ========  ========  =====
U          m/s    -2.56e1   5.45e1     6.39e0    1.22e1    .75
FSDSC      W/m2   1.24e2    3.26e2     2.43e2    4.83e1    .66
Z3         m      4.12e1    3.77e4     1.12e4    1.01e4    .58
CCN3       #/cm3  3.37e-5   1.24e3     2.66e1    5.57e1    .71
=========  =====  ========  =========  ========  ========  =====
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["VariableSpec", "build_catalog", "featured_variables", "FEATURED"]

_KINDS = ("linear", "lognormal", "height")
_MASKS = ("none", "land", "ocean")


@dataclass(frozen=True)
class VariableSpec:
    """Static description of one CAM history variable.

    Parameters
    ----------
    name, long_name, units:
        NetCDF-style identification.
    dims:
        ``"2D"`` (ncol) or ``"3D"`` (nlev x ncol).
    kind:
        ``"linear"``  — field = loc + scale * raw;
        ``"lognormal"`` — field = exp(loc + scale * raw), for tracers and
        concentrations spanning orders of magnitude (CCN3, SO2, Q);
        ``"height"`` — vertical height profile + scale * raw, for
        geopotential-like variables (Z3) whose std is set by the vertical
        structure.
    loc, scale:
        Location/scale of the target distribution (log-space for
        lognormal).
    smoothness:
        In (0, 1]; spectral decay of the spatial structure.  1.0 is very
        smooth (planetary waves only), small values add fine-scale
        structure.
    variability:
        Ensemble (member-to-member) anomaly amplitude as a fraction of
        ``scale``.  Controls how forgiving the RMSZ test is: variables
        with tiny internal variability are the ones coarse compression
        fails on.
    noise:
        Grid-scale internal-variability noise amplitude (fraction of
        ``scale``); guarantees nonzero ensemble variance at every point.
    fill_mask:
        ``"none"``, ``"land"``, or ``"ocean"``: where to place CESM's 1e35
        fill values.
    vert_decay:
        For 3-D lognormal variables: how many e-foldings the field decays
        from the surface to the model top.  Tracers like CCN3 or specific
        humidity drop several orders of magnitude with height, which is
        exactly what defeats GRIB2's single decimal scale factor
        (Section 5.3: "CCN3 has quite a large range, and we find that
        GRIB2 does not perform well on such variables").
    """

    name: str
    long_name: str
    units: str
    dims: str
    kind: str = "linear"
    loc: float = 0.0
    scale: float = 1.0
    smoothness: float = 0.7
    variability: float = 0.1
    noise: float = 0.02
    fill_mask: str = "none"
    vert_decay: float = 0.0
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.dims not in ("2D", "3D"):
            raise ValueError(f"{self.name}: dims must be 2D or 3D, got {self.dims}")
        if self.kind not in _KINDS:
            raise ValueError(f"{self.name}: unknown kind {self.kind!r}")
        if not 0.0 < self.smoothness <= 1.0:
            raise ValueError(f"{self.name}: smoothness must be in (0, 1]")
        if self.scale <= 0:
            raise ValueError(f"{self.name}: scale must be positive")
        if self.variability <= 0 or self.noise <= 0:
            raise ValueError(
                f"{self.name}: variability and noise must be positive "
                "(the PVT needs nonzero ensemble variance everywhere)"
            )
        if self.fill_mask not in _MASKS:
            raise ValueError(f"{self.name}: unknown fill_mask {self.fill_mask!r}")
        if self.vert_decay < 0:
            raise ValueError(f"{self.name}: vert_decay must be non-negative")
        if self.vert_decay and (self.dims != "3D" or self.kind != "lognormal"):
            raise ValueError(
                f"{self.name}: vert_decay applies only to 3D lognormal fields"
            )

    @property
    def is_3d(self) -> bool:
        """True for (nlev, ncol) variables."""
        return self.dims == "3D"


#: The paper's four featured variables, tuned to Table 2.
FEATURED: tuple[VariableSpec, ...] = (
    VariableSpec(
        name="U", long_name="Zonal wind", units="m/s", dims="3D",
        kind="linear", loc=6.39, scale=12.2, smoothness=0.92,
        variability=0.10, noise=0.01,
    ),
    VariableSpec(
        name="FSDSC", long_name="Clearsky downwelling solar flux at surface",
        units="W/m2", dims="2D", kind="linear", loc=243.0, scale=48.3,
        smoothness=0.85, variability=0.04, noise=0.008,
    ),
    VariableSpec(
        name="Z3", long_name="Geopotential height (above sea level)",
        units="m", dims="3D", kind="height", loc=0.0, scale=60.0,
        smoothness=0.95, variability=0.04, noise=0.015,
    ),
    VariableSpec(
        name="CCN3", long_name="CCN concentration at S=0.1%",
        units="#/cm3", dims="3D", kind="lognormal", loc=3.2, scale=1.4,
        smoothness=0.55, variability=0.08, noise=0.04, vert_decay=10.0,
    ),
)

#: Real CAM5 history variables used to give the catalog authentic names and
#: a realistic diversity of magnitudes.  (name, long name, units, dims,
#: kind, loc, scale, smoothness, variability, noise, fill_mask)
_NAMED = (
    ("T", "Temperature", "K", "3D", "linear", 250.0, 30.0, 0.93, 0.03, 0.004, "none"),
    ("V", "Meridional wind", "m/s", "3D", "linear", 0.0, 9.5, 0.90, 0.12, 0.012, "none"),
    ("OMEGA", "Vertical velocity (pressure)", "Pa/s", "3D", "linear", 0.0, 0.12, 0.55, 0.18, 0.05, "none"),
    ("Q", "Specific humidity", "kg/kg", "3D", "lognormal", -4.6, 0.9, 0.80, 0.06, 0.02, "none"),
    ("RELHUM", "Relative humidity", "percent", "3D", "linear", 55.0, 25.0, 0.70, 0.08, 0.03, "none"),
    ("CLOUD", "Cloud fraction", "fraction", "3D", "linear", 0.3, 0.18, 0.60, 0.15, 0.05, "none"),
    ("CLDLIQ", "Grid box averaged cloud liquid amount", "kg/kg", "3D", "lognormal", -11.0, 1.8, 0.55, 0.15, 0.06, "none"),
    ("CLDICE", "Grid box averaged cloud ice amount", "kg/kg", "3D", "lognormal", -12.0, 1.7, 0.55, 0.15, 0.06, "none"),
    ("SO2", "Sulfur dioxide", "mol/mol", "3D", "lognormal", -21.5, 1.6, 0.65, 0.10, 0.04, "none"),
    ("SO4", "Sulfate aerosol", "kg/kg", "3D", "lognormal", -19.0, 1.8, 0.65, 0.10, 0.04, "none"),
    ("DMS", "Dimethyl sulfide", "mol/mol", "3D", "lognormal", -22.0, 2.0, 0.60, 0.12, 0.05, "none"),
    ("O3", "Ozone", "mol/mol", "3D", "lognormal", -13.5, 1.2, 0.85, 0.04, 0.01, "none"),
    ("NUMLIQ", "Cloud liquid droplet number", "1/kg", "3D", "lognormal", 14.0, 2.4, 0.50, 0.15, 0.07, "none"),
    ("NUMICE", "Cloud ice crystal number", "1/kg", "3D", "lognormal", 9.0, 2.2, 0.50, 0.15, 0.07, "none"),
    ("AWNC", "Average cloud water number conc", "m-3", "3D", "lognormal", 16.0, 2.3, 0.50, 0.14, 0.06, "none"),
    ("DTCOND", "T tendency - moist processes", "K/s", "3D", "linear", 0.0, 2.2e-5, 0.45, 0.20, 0.08, "none"),
    ("QRL", "Longwave heating rate", "K/s", "3D", "linear", -1.6e-5, 1.1e-5, 0.75, 0.07, 0.02, "none"),
    ("QRS", "Solar heating rate", "K/s", "3D", "linear", 1.2e-5, 0.9e-5, 0.78, 0.06, 0.02, "none"),
    ("UU", "Zonal velocity squared", "m2/s2", "3D", "linear", 190.0, 170.0, 0.85, 0.10, 0.02, "none"),
    ("VV", "Meridional velocity squared", "m2/s2", "3D", "linear", 95.0, 80.0, 0.85, 0.12, 0.02, "none"),
    ("VQ", "Meridional water transport", "m/s kg/kg", "3D", "linear", 0.0, 0.011, 0.70, 0.14, 0.04, "none"),
    ("VT", "Meridional heat transport", "K m/s", "3D", "linear", 0.0, 95.0, 0.80, 0.12, 0.03, "none"),
    ("ICIMR", "Prognostic in-cloud ice mixing ratio", "kg/kg", "3D", "lognormal", -11.5, 1.5, 0.55, 0.15, 0.06, "none"),
    ("ICWMR", "Prognostic in-cloud water mixing ratio", "kg/kg", "3D", "lognormal", -10.5, 1.5, 0.55, 0.15, 0.06, "none"),
    ("PS", "Surface pressure", "Pa", "2D", "linear", 98000.0, 3500.0, 0.90, 0.03, 0.004, "none"),
    ("FLNT", "Net longwave flux at top of model", "W/m2", "2D", "linear", 235.0, 45.0, 0.80, 0.04, 0.01, "none"),
    ("FSNT", "Net solar flux at top of model", "W/m2", "2D", "linear", 240.0, 85.0, 0.82, 0.04, 0.01, "none"),
    ("PSL", "Sea level pressure", "Pa", "2D", "linear", 101200.0, 1200.0, 0.90, 0.06, 0.008, "none"),
    ("TS", "Surface temperature (radiative)", "K", "2D", "linear", 287.0, 16.0, 0.88, 0.03, 0.005, "none"),
    ("TREFHT", "Reference height temperature", "K", "2D", "linear", 286.0, 15.5, 0.88, 0.03, 0.005, "none"),
    ("SST", "Sea surface temperature", "K", "2D", "linear", 291.0, 8.0, 0.90, 0.02, 0.004, "land"),
    ("ICEFRAC", "Fraction of sfc area covered by sea-ice", "fraction", "2D", "linear", 0.05, 0.12, 0.75, 0.10, 0.03, "land"),
    ("SOILW", "Soil moisture", "m3/m3", "2D", "linear", 0.22, 0.10, 0.65, 0.08, 0.03, "ocean"),
    ("PRECT", "Total precipitation rate", "m/s", "2D", "lognormal", -18.5, 1.4, 0.55, 0.15, 0.06, "none"),
    ("PRECC", "Convective precipitation rate", "m/s", "2D", "lognormal", -19.5, 1.6, 0.50, 0.18, 0.07, "none"),
    ("PRECL", "Large-scale precipitation rate", "m/s", "2D", "lognormal", -19.0, 1.5, 0.55, 0.15, 0.06, "none"),
    ("FLNS", "Net longwave flux at surface", "W/m2", "2D", "linear", 60.0, 28.0, 0.75, 0.06, 0.02, "none"),
    ("FSNS", "Net solar flux at surface", "W/m2", "2D", "linear", 165.0, 70.0, 0.78, 0.05, 0.015, "none"),
    ("FSDS", "Downwelling solar flux at surface", "W/m2", "2D", "linear", 190.0, 75.0, 0.80, 0.05, 0.012, "none"),
    ("FLDS", "Downwelling longwave flux at surface", "W/m2", "2D", "linear", 310.0, 60.0, 0.82, 0.04, 0.01, "none"),
    ("LHFLX", "Surface latent heat flux", "W/m2", "2D", "linear", 85.0, 55.0, 0.65, 0.08, 0.03, "none"),
    ("SHFLX", "Surface sensible heat flux", "W/m2", "2D", "linear", 18.0, 22.0, 0.62, 0.10, 0.04, "none"),
    ("TAUX", "Zonal surface stress", "N/m2", "2D", "linear", 0.0, 0.09, 0.70, 0.12, 0.04, "none"),
    ("TAUY", "Meridional surface stress", "N/m2", "2D", "linear", 0.0, 0.06, 0.70, 0.13, 0.04, "none"),
    ("TMQ", "Total precipitable water", "kg/m2", "2D", "linear", 24.0, 14.0, 0.80, 0.06, 0.015, "none"),
    ("CLDTOT", "Total cloud fraction", "fraction", "2D", "linear", 0.62, 0.20, 0.62, 0.10, 0.04, "none"),
    ("CLDLOW", "Low cloud fraction", "fraction", "2D", "linear", 0.42, 0.22, 0.60, 0.12, 0.05, "none"),
    ("CLDHGH", "High cloud fraction", "fraction", "2D", "linear", 0.35, 0.20, 0.62, 0.12, 0.05, "none"),
    ("PBLH", "Planetary boundary layer height", "m", "2D", "linear", 650.0, 320.0, 0.60, 0.10, 0.04, "none"),
    ("U10", "10m wind speed", "m/s", "2D", "linear", 6.2, 2.8, 0.72, 0.09, 0.03, "none"),
    ("USTAR", "Surface friction velocity", "m/s", "2D", "linear", 0.28, 0.11, 0.68, 0.09, 0.03, "none"),
    ("QFLX", "Surface water flux", "kg/m2/s", "2D", "lognormal", -10.6, 0.9, 0.65, 0.08, 0.03, "none"),
    ("SNOWHLND", "Water equivalent snow depth", "m", "2D", "lognormal", -4.5, 1.8, 0.60, 0.10, 0.05, "ocean"),
    ("AODVIS", "Aerosol optical depth (visible)", "1", "2D", "lognormal", -2.2, 0.8, 0.60, 0.10, 0.04, "none"),
    ("BURDENSO4", "Sulfate aerosol burden", "kg/m2", "2D", "lognormal", -5.7, 0.9, 0.65, 0.09, 0.03, "none"),
    ("TGCLDLWP", "Total grid-box cloud liquid water path", "kg/m2", "2D", "lognormal", -3.2, 1.1, 0.55, 0.13, 0.05, "none"),
    ("TGCLDIWP", "Total grid-box cloud ice water path", "kg/m2", "2D", "lognormal", -3.8, 1.1, 0.55, 0.13, 0.05, "none"),
)

#: Surface-to-model-top decay (in e-foldings) for 3-D lognormal tracers:
#: humidity and aerosol loadings fall off sharply with height, giving these
#: variables the huge dynamic range that defeats GRIB2's linear scaling.
_VERT_DECAY = {
    "Q": 7.0,
    "CLDLIQ": 5.0,
    "CLDICE": 3.0,
    "SO2": 4.0,
    "SO4": 4.0,
    "DMS": 6.0,
    "NUMLIQ": 5.0,
    "NUMICE": 2.0,
    "AWNC": 5.0,
    "ICIMR": 4.0,
    "ICWMR": 4.0,
}


def featured_variables() -> tuple[VariableSpec, ...]:
    """The paper's four case-study variables: U, FSDSC, Z3, CCN3."""
    return FEATURED


def build_catalog(n_2d: int = 83, n_3d: int = 87) -> tuple[VariableSpec, ...]:
    """Build a catalog with exactly ``n_2d`` 2-D and ``n_3d`` 3-D variables.

    The four featured variables and the named CAM variables come first (as
    many as fit the requested counts); the remainder are synthetic tracers
    (``TRC*``/``AER*``) whose parameters sweep magnitude, smoothness, and
    variability so the catalog spans the diversity the paper emphasizes
    (Section 3.1: SO2 at O(1e-8) vs CCN3 at O(1e3)).
    """
    if n_2d < 1 or n_3d < 3:
        raise ValueError("need at least 1 two-dimensional and 3 three-"
                         "dimensional variables (the featured set)")
    base = list(FEATURED) + [
        VariableSpec(name=n, long_name=ln, units=u, dims=d, kind=k, loc=lo,
                     scale=s, smoothness=sm, variability=v, noise=nz,
                     fill_mask=fm, vert_decay=_VERT_DECAY.get(n, 0.0))
        for (n, ln, u, d, k, lo, s, sm, v, nz, fm) in _NAMED
    ]
    catalog_2d = [v for v in base if v.dims == "2D"][:n_2d]
    catalog_3d = [v for v in base if v.dims == "3D"][:n_3d]

    # Synthetic fillers sweep the parameter space deterministically.
    def synth(i: int, dims: str) -> VariableSpec:
        """Deterministic parameter sweep for the i-th synthetic tracer."""
        kind = ("linear", "lognormal")[i % 2]
        # Magnitudes from 1e-8 to 1e4 in log steps; alternate signs of loc.
        decade = -8 + (i * 3) % 13
        if kind == "linear":
            loc = (-1.0 if i % 4 == 3 else 1.0) * 10.0**decade
            scale = 0.5 * 10.0**decade
        else:
            loc = 2.302585 * decade  # ln(10**decade)
            scale = 0.6 + (i % 5) * 0.45
        smooth = 0.35 + 0.06 * (i % 11)
        variability = 0.006 * (1 + (i * 7) % 29)
        noise = 0.004 * (1 + (i * 5) % 11)
        # Fill values stay confined to the named surface variables (SST,
        # ICEFRAC, SOILW, SNOWHLND): the paper's 170 CAM-PVT variables
        # behave like a fill-free set (APAX-2 passes the rho test on all
        # of them, which block codecs cannot do through 1e35 fills).
        fill = "none"
        decay = float((i * 3) % 9) if (kind == "lognormal" and dims == "3D") \
            else 0.0
        prefix = "TRC" if kind == "lognormal" else "AER"
        return VariableSpec(
            name=f"{prefix}{dims[0]}{i:03d}",
            long_name=f"Synthetic {kind} tracer {i} ({dims})",
            units="kg/kg" if kind == "lognormal" else "units",
            dims=dims, kind=kind, loc=loc, scale=scale, smoothness=smooth,
            variability=variability, noise=noise, fill_mask=fill,
            vert_decay=decay,
        )

    i = 0
    while len(catalog_2d) < n_2d:
        catalog_2d.append(synth(i, "2D"))
        i += 1
    while len(catalog_3d) < n_3d:
        catalog_3d.append(synth(i, "3D"))
        i += 1

    catalog = tuple(catalog_2d + catalog_3d)
    names = [v.name for v in catalog]
    if len(set(names)) != len(names):
        raise AssertionError("catalog produced duplicate variable names")
    return catalog
