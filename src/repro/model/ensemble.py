"""The CESM-PVT ensemble: 101 one-year members from perturbed initials.

:class:`CAMEnsemble` runs the dycore once and serves per-variable ensemble
arrays on demand (with a small LRU cache — at paper scale a single 3-D
variable's ensemble is ~600 MB, so only a few are kept resident).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro import store
from repro.config import ReproConfig, get_config
from repro.model.cam import CAMModel
from repro.model.dycore import DycoreRun, PERTURBATION_SCALE
from repro.model.variables import VariableSpec

__all__ = ["CAMEnsemble"]

_CACHE_SLOTS = 8


class CAMEnsemble:
    """Ensemble E = {E_1, ..., E_M} of perturbed-initial-condition runs.

    Parameters
    ----------
    config:
        Scale parameters; defaults to the process-wide configuration.
    perturbation:
        Initial-condition perturbation scale (paper: O(1e-14)).
    """

    def __init__(
        self,
        config: ReproConfig | None = None,
        perturbation: float = PERTURBATION_SCALE,
    ):
        self.config = config if config is not None else get_config()
        self.model = CAMModel.from_config(self.config)
        self._run: DycoreRun = self._run_dycore(perturbation)
        self._cache: OrderedDict[str, np.ndarray] = OrderedDict()

    def _run_dycore(self, perturbation: float) -> DycoreRun:
        """Integrate the ensemble, through the artifact cache when active.

        The run is a pure function of the scale config plus the dycore's
        own parameters, so its coefficient/state arrays are stored as an
        ``npz`` artifact and a second construction at the same scale is
        a read instead of an integration.
        """
        dycore = self.model.dycore
        key = store.artifact_key(
            "model.dycore_run",
            config=self.config,
            perturbation=perturbation,
            n_modes=dycore.n_modes,
            forcing=dycore.forcing,
        )
        return store.cached(
            key,
            lambda: dycore.run_ensemble(
                self.config.n_members, perturbation
            ),
            kind="npz",
            stage="model.dycore_run",
            meta={"members": self.config.n_members},
            encode=lambda run: {
                "coefficients": run.coefficients,
                "final_states": run.final_states,
            },
            decode=lambda data: DycoreRun(
                coefficients=data["coefficients"],
                final_states=data["final_states"],
            ),
        )

    @property
    def n_members(self) -> int:
        """Ensemble size (paper: 101)."""
        return self.config.n_members

    @property
    def dycore_run(self) -> DycoreRun:
        """The underlying chaotic-dycore integration result."""
        return self._run

    @property
    def catalog(self) -> tuple[VariableSpec, ...]:
        """The variable catalog this ensemble synthesizes."""
        return self.model.catalog

    def spec(self, name: str) -> VariableSpec:
        """Look up a catalog variable by name."""
        return self.model.spec(name)

    def ensemble_field(self, variable: VariableSpec | str) -> np.ndarray:
        """All members' fields for one variable.

        Returns ``(n_members, nlev, ncol)`` float32 for 3-D variables,
        ``(n_members, ncol)`` for 2-D.  The result is cached (LRU).
        """
        spec = self.model.spec(variable) if isinstance(variable, str) else variable
        cached = self._cache.get(spec.name)
        if cached is not None:
            self._cache.move_to_end(spec.name)
            return cached
        fields = self.model.fields_for(
            spec, self._run.coefficients, np.arange(self.n_members)
        )
        self._cache[spec.name] = fields
        if len(self._cache) > _CACHE_SLOTS:
            self._cache.popitem(last=False)
        return fields

    def member_field(self, variable: VariableSpec | str,
                     member: int) -> np.ndarray:
        """One member's field (a view into the cached ensemble array)."""
        if not 0 <= member < self.n_members:
            raise IndexError(
                f"member {member} out of range 0..{self.n_members - 1}"
            )
        return self.ensemble_field(variable)[member]

    def history_snapshot(self, member: int) -> dict[str, np.ndarray]:
        """All variables for one member (a history-file time slice)."""
        if not 0 <= member < self.n_members:
            raise IndexError(
                f"member {member} out of range 0..{self.n_members - 1}"
            )
        return self.model.history_snapshot(
            self._run.coefficients[member], member
        )

    def pick_members(self, k: int = 3, seed: int = 0) -> np.ndarray:
        """Randomly select ``k`` distinct members (the PVT draws 3)."""
        if not 1 <= k <= self.n_members:
            raise ValueError(f"k must be in 1..{self.n_members}, got {k}")
        rng = np.random.default_rng((self.config.base_seed, 0x504B, seed))
        return np.sort(rng.choice(self.n_members, size=k, replace=False))
