"""Global energy-budget impact checks (paper Section 6 future work).

"We plan to extend our verification metrics to evaluate the impact of
compression on global energy budget calculations."  Two checks:

- :func:`global_mean_shift` — the relative change in a variable's
  area-weighted global mean caused by compression (global means feed every
  budget term, so a biased codec shows up here first);
- :func:`energy_budget_residual` — the top-of-model net radiation residual
  ``FSNT - FLNT`` computed from original vs reconstructed fluxes; a good
  codec must not change the budget by more than the tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.grid.cubed_sphere import CubedSphereGrid
from repro.metrics.characterize import valid_mask

__all__ = ["global_mean_shift", "energy_budget_residual"]


def _masked_global_mean(grid: CubedSphereGrid, field: np.ndarray) -> float:
    field = np.asarray(field, dtype=np.float64)
    mask = ~valid_mask(field)
    return grid.global_mean(np.where(mask, 0.0, field), mask=mask)


def global_mean_shift(
    grid: CubedSphereGrid,
    original: np.ndarray,
    reconstructed: np.ndarray,
) -> float:
    """|Δ global mean| normalized by the original field's spread.

    Normalizing by the spatial standard deviation (not the mean) keeps the
    measure meaningful for anomaly-like variables whose global mean is
    near zero.
    """
    original = np.asarray(original, dtype=np.float64)
    g_orig = _masked_global_mean(grid, original)
    g_rec = _masked_global_mean(grid, reconstructed)
    spread = float(original[valid_mask(original)].std())
    if spread == 0.0:
        return 0.0 if g_orig == g_rec else float("inf")
    return abs(g_rec - g_orig) / spread


def energy_budget_residual(
    grid: CubedSphereGrid,
    fsnt_original: np.ndarray,
    flnt_original: np.ndarray,
    fsnt_reconstructed: np.ndarray,
    flnt_reconstructed: np.ndarray,
) -> dict[str, float]:
    """Top-of-model energy balance before and after compression.

    The four FSNT/FLNT inputs are float arrays on ``grid`` (same shape,
    fill values excluded via the grid mask).  Returns the original
    residual (W/m2), the reconstructed residual, and
    the absolute budget shift |Δ(FSNT - FLNT)| — the quantity a climate
    scientist would audit before accepting compressed history files.
    """
    res_orig = _masked_global_mean(grid, fsnt_original) - _masked_global_mean(
        grid, flnt_original
    )
    res_rec = _masked_global_mean(
        grid, fsnt_reconstructed
    ) - _masked_global_mean(grid, flnt_reconstructed)
    return {
        "original_residual": res_orig,
        "reconstructed_residual": res_rec,
        "budget_shift": abs(res_rec - res_orig),
    }
