"""Per-variable acceptance testing: the four columns of Table 6.

A (variable, codec) pair is evaluated by:

1. **rho**     — Pearson correlation >= 0.99999 (eq. 5) for each of the
   randomly chosen test members;
2. **RMSZ ens.** — the reconstructed member's RMSZ falls within the
   ensemble distribution *and* within 1/10 of the original's (eq. 8);
3. **E_nmax ens.** — the original-vs-reconstructed e_nmax (eq. 2) is within
   the ensemble's E_nmax range and at most 1/10 of it (eq. 11);
4. **bias**    — all members are compressed, reconstructed RMSZ is
   regressed on original RMSZ, and the 95% worst-case slope is within
   0.05 of 1 (eq. 9).

"all" (the right-most Table 6 column) requires every test to pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs, store
from repro.compressors.base import Compressor
from repro.config import (
    BIAS_SLOPE_LIMIT,
    ENMAX_RATIO_LIMIT,
    RHO_THRESHOLD,
    RMSZ_DIFF_LIMIT,
)
from repro.metrics.correlation import pearson
from repro.metrics.pointwise import normalized_max_error
from repro.pvt.bias import BiasResult, bias_regression
from repro.pvt.enmax import enmax_distribution, enmax_ratio_test
from repro.pvt.zscore import EnsembleStats, rmsz_closeness_test

__all__ = [
    "TestVerdict",
    "VariableContext",
    "VariableVerdict",
    "evaluate_variable",
]

# PVT pass/fail tallies (docs/observability.md), labelled per test.
_PASSED = obs.counter("pvt.tests_passed")
_FAILED = obs.counter("pvt.tests_failed")
_VARIABLES = obs.counter("pvt.variables_evaluated")


@dataclass(frozen=True)
class TestVerdict:
    """Outcome of one acceptance test, with its diagnostics."""

    name: str
    passed: bool
    detail: dict = field(default_factory=dict, compare=False)


@dataclass(frozen=True)
class VariableContext:
    """Per-variable ensemble statistics shared across codec evaluations.

    Building these is O(n_members x n_points); when sweeping many codec
    variants over the same variable (Table 6, hybrid selection) compute
    them once via :meth:`from_ensemble` and pass to
    :func:`evaluate_variable`.
    """

    stats: EnsembleStats
    rmsz_dist: np.ndarray
    enmax_dist: np.ndarray

    @classmethod
    def from_ensemble(cls, ensemble: np.ndarray) -> "VariableContext":
        """Build the sufficient statistics and both distributions once."""
        with obs.span("pvt.context", members=int(ensemble.shape[0])):
            stats = EnsembleStats(ensemble)
            return cls(
                stats=stats,
                rmsz_dist=stats.distribution(),
                enmax_dist=enmax_distribution(ensemble),
            )


@dataclass(frozen=True)
class VariableVerdict:
    """All four verdicts for one (variable, codec) pair."""

    variable: str
    codec: str
    rho: TestVerdict
    rmsz: TestVerdict
    enmax: TestVerdict
    bias: TestVerdict | None
    mean_cr: float

    @property
    def all_passed(self) -> bool:
        """The Table 6 'all' column: every run test passed."""
        verdicts = [self.rho, self.rmsz, self.enmax]
        if self.bias is not None:
            verdicts.append(self.bias)
        return all(v.passed for v in verdicts)

    def as_row(self) -> dict:
        """Flatten into a pass/fail row for reporting."""
        row = {
            "variable": self.variable,
            "codec": self.codec,
            "rho": self.rho.passed,
            "rmsz": self.rmsz.passed,
            "enmax": self.enmax.passed,
            "cr": self.mean_cr,
            "all": self.all_passed,
        }
        row["bias"] = self.bias.passed if self.bias is not None else None
        return row


def _reconstruct_members(
    ensemble: np.ndarray, codec: Compressor, members
) -> tuple[dict[int, np.ndarray], dict[int, float]]:
    recon: dict[int, np.ndarray] = {}
    crs: dict[int, float] = {}
    for m in members:
        outcome = codec.roundtrip(np.ascontiguousarray(ensemble[m]))
        recon[int(m)] = outcome.reconstructed
        crs[int(m)] = outcome.cr
    return recon, crs


def evaluate_variable(
    ensemble: np.ndarray,
    codec: Compressor,
    members,
    variable: str = "?",
    run_bias: bool = True,
    rho_threshold: float = RHO_THRESHOLD,
    rmsz_limit: float = RMSZ_DIFF_LIMIT,
    enmax_limit: float = ENMAX_RATIO_LIMIT,
    bias_limit: float = BIAS_SLOPE_LIMIT,
    context: VariableContext | None = None,
) -> VariableVerdict:
    """Run the four acceptance tests for one variable and one codec.

    Parameters
    ----------
    ensemble:
        ``(n_members, ...)`` float32 member fields for this variable.
    codec:
        Configured compressor variant.
    members:
        The randomly chosen test member indices (the PVT uses 3).
    run_bias:
        The bias test compresses *all* members (Section 4.3); disable to
        skip that cost when only the first three columns are needed.

    When an artifact store is active (:mod:`repro.store`), the verdict
    is cached keyed on the ensemble's content hash, the codec
    fingerprint, the member draw, and the limits — a repeated sweep
    (Table 6, hybrid selection) reads instead of recomputing.
    """
    ensemble = np.asarray(ensemble)
    members = [int(m) for m in members]
    if not members:
        raise ValueError("need at least one test member")
    st = store.get_store()
    if st is None:
        return _evaluate_impl(
            ensemble, codec, members, variable, run_bias, rho_threshold,
            rmsz_limit, enmax_limit, bias_limit, context,
        )
    # The verdict is a pure function of the ensemble bytes, the codec
    # configuration, the member draw, and the limits; ``context`` is
    # derived from the ensemble, so it stays out of the key.
    key = store.artifact_key(
        "pvt.verdict",
        ensemble=store.array_fingerprint(ensemble),
        codec=codec.fingerprint(),
        members=members,
        variable=variable,
        run_bias=run_bias,
        limits=[rho_threshold, rmsz_limit, enmax_limit, bias_limit],
    )
    return store.cached(
        key,
        lambda: _evaluate_impl(
            ensemble, codec, members, variable, run_bias, rho_threshold,
            rmsz_limit, enmax_limit, bias_limit, context,
        ),
        kind="pkl",
        stage="pvt.verdict",
        meta={"variable": variable, "codec": codec.variant},
        store=st,
    )


def _evaluate_impl(
    ensemble: np.ndarray,
    codec: Compressor,
    members: list[int],
    variable: str,
    run_bias: bool,
    rho_threshold: float,
    rmsz_limit: float,
    enmax_limit: float,
    bias_limit: float,
    context: VariableContext | None,
) -> VariableVerdict:
    with obs.span("pvt.variable", variable=variable, codec=codec.variant):
        if context is None:
            context = VariableContext.from_ensemble(ensemble)
        stats = context.stats
        rmsz_dist = context.rmsz_dist
        enmax_dist = context.enmax_dist

        with obs.span("pvt.reconstruct", variable=variable,
                      members=len(members)):
            recon, crs = _reconstruct_members(ensemble, codec, members)

        with obs.span("pvt.rho", variable=variable):
            rho_values = {m: pearson(ensemble[m], recon[m]) for m in members}
            rho_verdict = TestVerdict(
                name="rho",
                passed=all(r >= rho_threshold for r in rho_values.values()),
                detail={"values": rho_values, "threshold": rho_threshold},
            )

        with obs.span("pvt.zscore", variable=variable):
            rmsz_detail: dict[int, dict] = {}
            rmsz_ok = True
            for m in members:
                orig_score = stats.member_rmsz(m)
                recon_score = stats.rmsz(recon[m].reshape(-1), m)
                within, close = rmsz_closeness_test(
                    orig_score, recon_score, rmsz_dist, rmsz_limit
                )
                rmsz_detail[m] = {
                    "original": orig_score,
                    "reconstructed": recon_score,
                    "within": within,
                    "close": close,
                }
                rmsz_ok &= within and close
            rmsz_verdict = TestVerdict(
                name="rmsz", passed=rmsz_ok,
                detail={"members": rmsz_detail, "distribution": rmsz_dist},
            )

        with obs.span("pvt.enmax", variable=variable):
            enmax_detail: dict[int, dict] = {}
            enmax_ok = True
            for m in members:
                e_nmax = normalized_max_error(ensemble[m], recon[m])
                within, small = enmax_ratio_test(
                    e_nmax, enmax_dist, enmax_limit
                )
                enmax_detail[m] = {
                    "e_nmax": e_nmax, "within": within, "small": small,
                }
                enmax_ok &= within and small
            enmax_verdict = TestVerdict(
                name="enmax", passed=enmax_ok,
                detail={"members": enmax_detail, "distribution": enmax_dist},
            )

        bias_verdict: TestVerdict | None = None
        if run_bias:
            with obs.span("pvt.bias", variable=variable,
                          members=int(ensemble.shape[0])):
                result = _bias_for(ensemble, codec, stats, rmsz_dist)
                bias_verdict = TestVerdict(
                    name="bias",
                    passed=result.passes(bias_limit),
                    detail={"regression": result},
                )

        verdict = VariableVerdict(
            variable=variable,
            codec=codec.variant,
            rho=rho_verdict,
            rmsz=rmsz_verdict,
            enmax=enmax_verdict,
            bias=bias_verdict,
            mean_cr=float(np.mean(list(crs.values()))),
        )
        if obs.active():
            _VARIABLES.add(1)
            for test in (verdict.rho, verdict.rmsz, verdict.enmax,
                         verdict.bias):
                if test is not None:
                    tally = _PASSED if test.passed else _FAILED
                    tally.add(1, test=test.name)
        return verdict


def _bias_for(
    ensemble: np.ndarray,
    codec: Compressor,
    stats: EnsembleStats,
    rmsz_original: np.ndarray,
) -> BiasResult:
    """Compress every member, rebuild E~, and regress RMSZ~ on RMSZ."""
    n = ensemble.shape[0]
    recon = np.empty_like(ensemble, dtype=np.float32)
    for m in range(n):
        recon[m] = codec.roundtrip(np.ascontiguousarray(ensemble[m])).reconstructed
    recon_stats = EnsembleStats(recon)
    rmsz_recon = recon_stats.distribution()
    return bias_regression(rmsz_original, rmsz_recon)
