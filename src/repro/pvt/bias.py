"""Bias detection via RMSZ-vs-RMSZ regression (Section 4.3, Figure 4).

All 101 members are compressed and decompressed, giving the reconstructed
ensemble E~.  Each member's RMSZ is computed within its own ensemble (E~'s
scores use E~'s sub-ensemble statistics), and the 101 (RMSZ_E, RMSZ_E~)
pairs are fit with ordinary least squares.  An unbiased reconstruction has
slope 1 and intercept 0; the 95% confidence rectangle around the estimate
quantifies how differently members respond to compression.  Eq. (9)
requires the worst-case slope within the rectangle to sit within 0.05 of
the ideal slope 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.config import BIAS_SLOPE_LIMIT

__all__ = ["BiasResult", "bias_regression", "slope_uncertainty_test"]


@dataclass(frozen=True)
class BiasResult:
    """OLS fit of reconstructed RMSZ on original RMSZ, with 95% CIs."""

    slope: float
    intercept: float
    slope_ci: tuple[float, float]
    intercept_ci: tuple[float, float]
    residual_std: float
    n: int

    @property
    def worst_case_slope(self) -> float:
        """The confidence-interval endpoint farthest from the ideal 1."""
        lo, hi = self.slope_ci
        return lo if abs(lo - 1.0) >= abs(hi - 1.0) else hi

    @property
    def slope_distance(self) -> float:
        """|s_I - s_WC| of eq. (9)."""
        return abs(1.0 - self.worst_case_slope)

    def contains_ideal(self) -> bool:
        """Whether the 95% rectangle contains (slope, intercept) = (1, 0)."""
        s_lo, s_hi = self.slope_ci
        i_lo, i_hi = self.intercept_ci
        return (s_lo <= 1.0 <= s_hi) and (i_lo <= 0.0 <= i_hi)

    def passes(self, limit: float = BIAS_SLOPE_LIMIT) -> bool:
        """Eq. (9): |s_I - s_WC| <= 0.05."""
        return self.slope_distance <= limit


def bias_regression(
    rmsz_original: np.ndarray,
    rmsz_reconstructed: np.ndarray,
    confidence: float = 0.95,
) -> BiasResult:
    """Fit reconstructed RMSZ on original RMSZ with OLS + t-based CIs.

    Both inputs are equal-length 1-D float arrays of per-member RMSZ
    scores (one entry per ensemble member).
    """
    x = np.asarray(rmsz_original, dtype=np.float64)
    y = np.asarray(rmsz_reconstructed, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("expected two equal-length 1-D RMSZ arrays")
    n = x.size
    if n < 3:
        raise ValueError(f"need at least 3 members for a regression, got {n}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")

    x_mean = x.mean()
    sxx = float(np.sum((x - x_mean) ** 2))
    if sxx == 0.0:
        raise ZeroDivisionError(
            "original RMSZ values are all identical; slope is undefined"
        )
    slope = float(np.sum((x - x_mean) * (y - y.mean())) / sxx)
    intercept = float(y.mean() - slope * x_mean)

    residuals = y - (intercept + slope * x)
    dof = n - 2
    s2 = float(np.sum(residuals**2) / dof) if dof > 0 else 0.0
    se_slope = np.sqrt(s2 / sxx)
    se_intercept = np.sqrt(s2 * (1.0 / n + x_mean**2 / sxx))
    t = float(sps.t.ppf(0.5 + confidence / 2.0, dof))

    return BiasResult(
        slope=slope,
        intercept=intercept,
        slope_ci=(slope - t * se_slope, slope + t * se_slope),
        intercept_ci=(
            intercept - t * se_intercept,
            intercept + t * se_intercept,
        ),
        residual_std=float(np.sqrt(s2)),
        n=n,
    )


def slope_uncertainty_test(
    result: BiasResult, limit: float = BIAS_SLOPE_LIMIT
) -> bool:
    """Eq. (9) as a standalone predicate."""
    return result.passes(limit)
