"""Z-scores and RMSZ against leave-one-out sub-ensembles (eqs. 6-7).

For each ensemble member ``m``, every grid point is standardized against
the mean and standard deviation of the *sub-ensemble* ``E \\ m`` (the other
100 members), and the member is summarized by the root-mean-square of its
Z-scores (eq. 7).  Applying this to all members yields the RMSZ
*distribution* that reconstructed data must fall within; eq. (8)
additionally requires the reconstructed member's RMSZ to sit within 1/10
of its original's.

Leave-one-out statistics are computed for all members at once from the
ensemble sums (O(M N), no per-member re-reduction).
"""

from __future__ import annotations

import numpy as np

from repro.check.hooks import boundary
from repro.config import RMSZ_DIFF_LIMIT
from repro.metrics.characterize import valid_mask

__all__ = ["EnsembleStats", "rmsz_distribution", "rmsz_closeness_test"]


class EnsembleStats:
    """Precomputed sufficient statistics of one variable's ensemble.

    Parameters
    ----------
    ensemble:
        ``(n_members, ...)`` array; trailing axes are flattened into one
        grid-point axis.  Points that are special values in *any* member
        are excluded from all statistics (fill masks are fixed per
        variable, so in practice a point is either valid in all members or
        none).
    ddof:
        Delta degrees of freedom of the sub-ensemble standard deviation
        (1 = sample std over the 100 remaining members).
    """

    def __init__(self, ensemble: np.ndarray, ddof: int = 1):
        ensemble = np.asarray(ensemble, dtype=np.float64)
        if ensemble.ndim < 2:
            raise ValueError("ensemble must be (n_members, ...)")
        m = ensemble.shape[0]
        if m < 3:
            raise ValueError(f"need at least 3 members, got {m}")
        if ddof not in (0, 1):
            raise ValueError(f"ddof must be 0 or 1, got {ddof}")
        flat = ensemble.reshape(m, -1)
        self.valid = valid_mask(flat).all(axis=0)
        if not self.valid.any():
            raise ValueError("no grid point is valid in every member")
        # Skip the fancy-index copy in the common all-valid case.
        kept = flat if self.valid.all() else flat[:, self.valid]
        # Center per grid point before forming sums of squares: the raw
        # sum-of-squares formula cancels catastrophically when the
        # ensemble spread is tiny relative to the field magnitude (Z3:
        # values ~4e4, spread ~1).  Leave-one-out statistics are shift-
        # invariant, so only the stored offset changes.
        self._center = kept.mean(axis=0)
        self._data = kept - self._center
        self.n_members = m
        self.ddof = ddof
        self._s1 = self._data.sum(axis=0)
        self._s2 = (self._data**2).sum(axis=0)
        # Spreads below ~1e-7 of the field magnitude are beneath float32
        # input resolution AND beneath the one-pass formula's own rounding
        # floor: clamp them to exactly zero so such points are skipped by
        # the Z-scores instead of producing huge spurious values.
        self._std_floor = 1e-7 * (
            np.abs(self._center) + np.abs(self._data).max(axis=0)
        )

    @property
    def n_points(self) -> int:
        """Valid grid points per member."""
        return self._data.shape[1]

    def member_values(self, member: int) -> np.ndarray:
        """Member ``m``'s valid-point values (flattened)."""
        self._check_member(member)
        return self._data[member] + self._center

    def _check_member(self, member: int) -> None:
        if not 0 <= member < self.n_members:
            raise IndexError(
                f"member {member} out of range 0..{self.n_members - 1}"
            )

    def loo_mean_std(self, member: int) -> tuple[np.ndarray, np.ndarray]:
        """Eq. 6's x-bar and sigma over the sub-ensemble E \\ member."""
        self._check_member(member)
        n = self.n_members - 1
        s1 = self._s1 - self._data[member]
        s2 = self._s2 - self._data[member] ** 2
        mean = s1 / n
        var = (s2 - n * mean**2) / (n - self.ddof)
        # Floating-point cancellation can leave tiny negatives.
        std = np.sqrt(np.maximum(var, 0.0))
        std = np.where(std <= self._std_floor, 0.0, std)
        return mean + self._center, std

    @boundary("zscores")
    def zscores(self, values: np.ndarray, exclude_member: int) -> np.ndarray:
        """Eq. (6): Z-scores of ``values`` against E \\ exclude_member.

        ``values`` may be the member's own field or a reconstruction of it
        (same shape as the original field, special values in the same
        places).  Points whose sub-ensemble std is zero are returned NaN
        and skipped by :meth:`rmsz`.
        """
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if values.shape[0] != self.valid.shape[0]:
            raise ValueError(
                f"field has {values.shape[0]} points, ensemble has "
                f"{self.valid.shape[0]}"
            )
        mean, std = self.loo_mean_std(exclude_member)
        v = values[self.valid]
        with np.errstate(divide="ignore", invalid="ignore"):
            z = (v - mean) / std
        z[std == 0.0] = np.nan
        return z

    def rmsz(self, values: np.ndarray, exclude_member: int) -> float:
        """Eq. (7): RMSZ of ``values`` against E \\ exclude_member."""
        z = self.zscores(values, exclude_member)
        ok = np.isfinite(z)
        if not ok.any():
            raise ValueError("every grid point has zero sub-ensemble spread")
        return float(np.sqrt(np.mean(z[ok] ** 2)))

    def member_rmsz(self, member: int) -> float:
        """RMSZ of member ``m``'s own (original) field."""
        self._check_member(member)
        full = np.empty(self.valid.shape[0])
        full[self.valid] = self.member_values(member)
        # Invalid points never enter rmsz(); fill with a neutral value.
        full[~self.valid] = 0.0
        return self.rmsz(full, member)

    @boundary("distribution")
    def distribution(self) -> np.ndarray:
        """RMSZ of every member against its own sub-ensemble (eq. 7 for
        all m) — the natural-variability distribution of Figure 2.

        Vectorized over members: the leave-one-out mean and variance for
        every member come from the shared ensemble sums in two array
        expressions, instead of one reduction pass per member.
        """
        n = self.n_members - 1
        mean = (self._s1[None, :] - self._data) / n  # (M, N), centered
        var = (
            (self._s2[None, :] - self._data**2) - n * mean**2
        ) / (n - self.ddof)
        std = np.sqrt(np.maximum(var, 0.0))
        std = np.where(std <= self._std_floor[None, :], 0.0, std)
        with np.errstate(divide="ignore", invalid="ignore"):
            z2 = ((self._data - mean) / std) ** 2
        ok = std > 0.0
        counts = ok.sum(axis=1)
        if np.any(counts == 0):
            raise ValueError("a member has zero sub-ensemble spread "
                             "at every grid point")
        z2 = np.where(ok, z2, 0.0)
        return np.sqrt(z2.sum(axis=1) / counts)


def rmsz_distribution(ensemble: np.ndarray, ddof: int = 1) -> np.ndarray:
    """Convenience wrapper: the (n_members,) RMSZ distribution."""
    return EnsembleStats(ensemble, ddof=ddof).distribution()


def rmsz_closeness_test(
    rmsz_original: float,
    rmsz_reconstructed: float,
    distribution: np.ndarray,
    limit: float = RMSZ_DIFF_LIMIT,
) -> tuple[bool, bool]:
    """The two RMSZ acceptance criteria of Section 4.3.

    Returns ``(within_distribution, close_to_original)``:

    - the reconstructed RMSZ "must at minimum fall within the distribution
      of the RMSZ values from the ensemble E";
    - eq. (8): |RMSZ_X - RMSZ_X~| <= 1/10.
    """
    distribution = np.asarray(distribution, dtype=np.float64)
    if distribution.size < 2:
        raise ValueError("distribution needs at least 2 ensemble RMSZ values")
    # Tolerance absorbs floating-point path differences between the
    # vectorized distribution and the single-member RMSZ computation; a
    # member AT the distribution edge must not fail by 1 ulp.
    tol = 1e-9 * (1.0 + float(np.abs(distribution).max()))
    within = bool(
        distribution.min() - tol <= rmsz_reconstructed
        <= distribution.max() + tol
    )
    close = bool(abs(rmsz_original - rmsz_reconstructed) <= limit)
    return within, close
