"""The CESM-PVT orchestrator.

Two use cases, mirroring Section 4.3:

- :meth:`CesmPvt.verify_port` — the tool's original purpose: decide
  whether runs from a "new machine" (here: a differently-seeded or
  perturbed model) are climate-changing, via the global-mean range-shift
  check and the RMSZ distribution check;
- :meth:`CesmPvt.evaluate_codec` — the paper's repurposing: run the four
  acceptance tests of :mod:`repro.pvt.acceptance` for every requested
  variable against a compressor, optionally in parallel across variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro import obs, store
from repro.compressors.base import Compressor
from repro.parallel.failures import TaskFailure
from repro.metrics.characterize import valid_mask
from repro.model.ensemble import CAMEnsemble
from repro.pvt.acceptance import VariableVerdict, evaluate_variable
from repro.pvt.zscore import EnsembleStats

__all__ = ["CesmPvt", "PvtReport", "PortVerdict"]


@dataclass(frozen=True)
class PortVerdict:
    """Port-verification outcome for one variable."""

    variable: str
    global_mean_ok: bool
    rmsz_ok: bool
    detail: dict = field(default_factory=dict, compare=False)

    @property
    def passed(self) -> bool:
        """Both the global-mean and RMSZ checks passed."""
        return self.global_mean_ok and self.rmsz_ok


@dataclass
class PvtReport:
    """Aggregated acceptance results for one codec over many variables.

    ``failures`` records variables whose parallel evaluation exhausted
    its retries (:class:`repro.parallel.TaskFailure` per variable name);
    their verdicts are absent and every tally is over the evaluated
    variables only, so a degraded report stays usable and honest.
    """

    codec: str
    verdicts: dict[str, VariableVerdict]
    failures: dict[str, TaskFailure] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when no variable's evaluation failed."""
        return not self.failures

    def pass_counts(self) -> dict[str, int]:
        """A Table 6 row: passes per test plus the "all" column.

        Values are plain ``int`` even when a verdict carries numpy bools,
        so the mapping prints exactly as documented.
        """
        counts = {"rho": 0, "rmsz": 0, "enmax": 0, "bias": 0, "all": 0}
        for v in self.verdicts.values():
            counts["rho"] += int(v.rho.passed)
            counts["rmsz"] += int(v.rmsz.passed)
            counts["enmax"] += int(v.enmax.passed)
            if v.bias is not None:
                counts["bias"] += int(v.bias.passed)
            counts["all"] += int(v.all_passed)
        return counts

    @property
    def n_variables(self) -> int:
        """Number of variables evaluated."""
        return len(self.verdicts)


class CesmPvt:
    """Verification tool bound to a generated ensemble."""

    def __init__(self, ensemble: CAMEnsemble, n_test_members: int = 3,
                 selection_seed: int = 0):
        self.ensemble = ensemble
        self.test_members = ensemble.pick_members(
            n_test_members, seed=selection_seed
        )

    # -- compression verification ----------------------------------------

    def evaluate_codec(
        self,
        codec: Compressor,
        variables=None,
        run_bias: bool = True,
        workers: int = 0,
    ) -> PvtReport:
        """Run the acceptance tests for ``codec`` over ``variables``.

        ``workers > 1`` distributes variables across processes via
        :mod:`repro.parallel` (each worker regenerates its fields from the
        shared dycore coefficients, so nothing large is pickled).
        """
        names = self._variable_names(variables)
        with obs.span("pvt.evaluate_codec", codec=codec.variant,
                      variables=len(names)):
            if workers and workers > 1:
                from repro.parallel.executor import parallel_map
                from repro.parallel.failures import MapResult

                result: MapResult = parallel_map(
                    _evaluate_one_remote,
                    [
                        (self.ensemble.config, codec, name,
                         tuple(int(m) for m in self.test_members), run_bias,
                         store.current_root())
                        for name in names
                    ],
                    workers=workers,
                    on_failure="collect",
                )
                # Degrade per variable: a failed evaluation costs its
                # verdict, never the report.
                verdicts = {
                    name: slot for name, slot in zip(names, result)
                    if not isinstance(slot, TaskFailure)
                }
                failures = {
                    names[f.index]: f for f in result.failures
                }
            else:
                verdicts = {
                    name: self._evaluate_one(codec, name, run_bias)
                    for name in names
                }
                failures = {}
        return PvtReport(codec=codec.variant, verdicts=verdicts,
                         failures=failures)

    def _evaluate_one(self, codec: Compressor, name: str,
                      run_bias: bool) -> VariableVerdict:
        fields = self.ensemble.ensemble_field(name)
        return evaluate_variable(
            fields, codec, self.test_members, variable=name,
            run_bias=run_bias,
        )

    def _variable_names(self, variables) -> list[str]:
        if variables is None:
            return [spec.name for spec in self.ensemble.catalog]
        return [
            v if isinstance(v, str) else v.name for v in variables
        ]

    # -- port verification -------------------------------------------------

    def verify_port(
        self,
        new_fields: dict[str, np.ndarray],
        mean_tolerance_factor: float = 1.0,
    ) -> dict[str, PortVerdict]:
        """The original CESM-PVT check for runs from a new machine.

        ``new_fields`` maps variable name to ``(k, ...)`` arrays holding k
        new runs.  For each variable:

        - the new runs' global means must fall within the ensemble's
          global-mean range (no "range shift"), stretched by
          ``mean_tolerance_factor``;
        - each new run's RMSZ against the ensemble must fall within the
          ensemble's RMSZ distribution.
        """
        verdicts: dict[str, PortVerdict] = {}
        for name, runs in new_fields.items():
            runs = np.asarray(runs, dtype=np.float64)
            fields = self.ensemble.ensemble_field(name)
            ens_means = np.asarray(
                [self._global_mean(f) for f in fields]
            )
            lo, hi = ens_means.min(), ens_means.max()
            center = (lo + hi) / 2.0
            half = (hi - lo) / 2.0 * mean_tolerance_factor
            new_means = np.asarray([self._global_mean(r) for r in runs])
            mean_ok = bool(
                np.all((new_means >= center - half) & (new_means <= center + half))
            )

            stats = EnsembleStats(fields)
            dist = stats.distribution()
            # A foreign run excludes nothing; score it against the full
            # ensemble by excluding an arbitrary member (statistically the
            # sub-ensembles are interchangeable).
            scores = np.asarray(
                [stats.rmsz(r.reshape(-1), 0) for r in runs]
            )
            rmsz_ok = bool(
                np.all((scores >= dist.min()) & (scores <= dist.max()))
            )
            verdicts[name] = PortVerdict(
                variable=name,
                global_mean_ok=mean_ok,
                rmsz_ok=rmsz_ok,
                detail={
                    "ensemble_mean_range": (float(lo), float(hi)),
                    "new_means": new_means,
                    "rmsz_distribution": dist,
                    "new_rmsz": scores,
                },
            )
        return verdicts

    def _global_mean(self, field: np.ndarray) -> float:
        grid = self.ensemble.model.grid
        mask = ~valid_mask(field)
        return grid.global_mean(
            np.where(mask, 0.0, field.astype(np.float64)),
            mask=mask,
        )


def _evaluate_one_remote(args) -> VariableVerdict:
    """Process-pool entry point: rebuild the ensemble field and evaluate."""
    config, codec, name, members, run_bias, store_root = args
    store.adopt_root(store_root)
    ensemble = _ensemble_for_config(config)
    fields = ensemble.ensemble_field(name)
    return evaluate_variable(
        fields, codec, members, variable=name, run_bias=run_bias
    )


@lru_cache(maxsize=1)
def _ensemble_for_config(config) -> CAMEnsemble:
    # Per-process memo (ReproConfig is frozen, hence hashable): each
    # pool worker rebuilds the ensemble once, not once per variable.
    return CAMEnsemble(config)
