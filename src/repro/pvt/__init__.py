"""The CESM port-verification tool (CESM-PVT), repurposed for compression
verification (paper Section 4.3).

Workflow:

1. an ensemble of perturbed-initial-condition runs provides the natural
   variability baseline (:mod:`repro.model.ensemble`);
2. :mod:`zscore` computes leave-one-out Z-scores and RMSZ (eqs. 6-7) and
   the eq. 8 closeness test;
3. :mod:`enmax` builds the E_nmax distribution (eq. 10) and the eq. 11
   ratio test;
4. :mod:`bias` compresses the whole ensemble and regresses reconstructed
   RMSZ on original RMSZ, with 95% confidence rectangles and the eq. 9
   slope-uncertainty test;
5. :mod:`acceptance` combines the four per-variable pass/fail verdicts
   (the columns of Table 6);
6. :mod:`tool` orchestrates everything (and implements the PVT's original
   purpose, the global-mean range-shift port check);
7. :mod:`budget` adds the global energy-budget conservation check from the
   paper's future work.
"""

from repro.pvt.zscore import EnsembleStats, rmsz_distribution
from repro.pvt.enmax import enmax_distribution, enmax_for_member
from repro.pvt.bias import BiasResult, bias_regression
from repro.pvt.acceptance import (
    TestVerdict,
    VariableVerdict,
    evaluate_variable,
)
from repro.pvt.tool import CesmPvt, PvtReport
from repro.pvt.budget import global_mean_shift, energy_budget_residual
from repro.pvt.distribution_tests import (
    KsResult,
    ks_test,
    rmsz_distribution_test,
)
from repro.pvt.summary import EnsembleSummary, VariableSummary

__all__ = [
    "EnsembleStats",
    "rmsz_distribution",
    "enmax_distribution",
    "enmax_for_member",
    "BiasResult",
    "bias_regression",
    "TestVerdict",
    "VariableVerdict",
    "evaluate_variable",
    "CesmPvt",
    "PvtReport",
    "global_mean_shift",
    "energy_budget_residual",
    "KsResult",
    "ks_test",
    "rmsz_distribution_test",
    "EnsembleSummary",
    "VariableSummary",
]
