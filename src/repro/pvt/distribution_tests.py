"""Distribution-level indistinguishability tests.

The paper's bias check (Section 4.3) regresses reconstructed RMSZ on
original RMSZ.  A natural strengthening — in the spirit of the claim that
"the distribution itself is essentially unchanged (statistically
indistinguishable)" — is to compare the two RMSZ *distributions* directly.
This module adds:

- :func:`ks_statistic` / :func:`ks_test` — the two-sample
  Kolmogorov-Smirnov test (implemented directly; the asymptotic p-value
  uses the Kolmogorov distribution via :mod:`scipy.special`);
- :func:`rmsz_distribution_test` — compress the whole ensemble with a
  codec and KS-test original vs reconstructed RMSZ distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import kolmogorov

from repro.compressors.base import Compressor
from repro.pvt.zscore import EnsembleStats

__all__ = ["KsResult", "ks_statistic", "ks_test", "rmsz_distribution_test"]


@dataclass(frozen=True)
class KsResult:
    """Two-sample KS outcome."""

    statistic: float
    p_value: float
    n_a: int
    n_b: int

    def indistinguishable(self, alpha: float = 0.05) -> bool:
        """True when the test fails to reject 'same distribution'."""
        return self.p_value > alpha


def ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Sup-norm distance between the two empirical CDFs.

    ``a`` and ``b`` are non-empty 1-D float samples (any dtype numpy can
    cast to float64); returns a scalar in [0, 1].
    """
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def ks_test(a: np.ndarray, b: np.ndarray) -> KsResult:
    """Two-sample KS test with the asymptotic p-value.

    ``a`` and ``b`` are non-empty 1-D float samples; sizes may differ.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    d = ks_statistic(a, b)
    n_eff = a.size * b.size / (a.size + b.size)
    p = float(kolmogorov((np.sqrt(n_eff) + 0.12 + 0.11 / np.sqrt(n_eff)) * d))
    return KsResult(statistic=d, p_value=min(max(p, 0.0), 1.0),
                    n_a=a.size, n_b=b.size)


def rmsz_distribution_test(
    ensemble: np.ndarray, codec: Compressor
) -> KsResult:
    """Compress every member; KS-test the reconstructed members' RMSZ
    scores against the original RMSZ distribution.

    Each reconstructed member is scored against the *original* ensemble's
    leave-one-out statistics (the reference frame of the paper's Figure 2
    markers).  Scoring within the reconstructed ensemble would be blind to
    compression that destroys every member the same way — the mutual
    Z-scores barely move even when the data is ruined.

    A codec whose reconstruction is climate-neutral leaves the score
    distribution statistically unchanged (large p-value); a destructive
    codec shifts it (small p-value).
    """
    ensemble = np.asarray(ensemble)
    stats = EnsembleStats(ensemble)
    original = stats.distribution()
    scores = np.empty(ensemble.shape[0])
    for m in range(ensemble.shape[0]):
        recon = codec.decompress(
            codec.compress(np.ascontiguousarray(ensemble[m]))
        )
        scores[m] = stats.rmsz(
            recon.astype(np.float64).reshape(-1), m
        )
    return ks_test(original, scores)
