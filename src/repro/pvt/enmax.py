"""Ensemble distribution of the normalized maximum pointwise error (eq. 10)
and the eq. 11 acceptance ratio.

For each member ``m`` the statistic is the largest pointwise deviation of
``m`` from *any* other member, normalized by ``m``'s own range::

    E_nmax^m = max_i ( max_{n != m} |x_i^m - x_i^n| ) / R_X^m

The inner max over 100 members never needs pairwise differencing: for each
grid point it is reached at the sub-ensemble's min or max, which we get
from the ensemble's two largest / two smallest values per point (so the
whole distribution costs one partial sort, not O(M^2 N)).
"""

from __future__ import annotations

import numpy as np

from repro.check.hooks import boundary
from repro.config import ENMAX_RATIO_LIMIT
from repro.metrics.characterize import valid_mask

__all__ = ["enmax_distribution", "enmax_for_member", "enmax_ratio_test"]


def _prepare(ensemble: np.ndarray) -> np.ndarray:
    ensemble = np.asarray(ensemble, dtype=np.float64)
    if ensemble.ndim < 2 or ensemble.shape[0] < 3:
        raise ValueError("ensemble must be (n_members >= 3, ...)")
    flat = ensemble.reshape(ensemble.shape[0], -1)
    valid = valid_mask(flat).all(axis=0)
    if not valid.any():
        raise ValueError("no grid point is valid in every member")
    return flat[:, valid]


@boundary("enmax")
def enmax_distribution(ensemble: np.ndarray) -> np.ndarray:
    """Eq. (10) for every member: the (n_members,) E_nmax distribution."""
    data = _prepare(ensemble)
    m = data.shape[0]

    # Two largest and two smallest values per point, with the members that
    # attain them (to handle "n != m" when m itself is the extremum).
    top2_idx = np.argpartition(data, m - 2, axis=0)[m - 2:]
    top2 = np.take_along_axis(data, top2_idx, axis=0)
    order = np.argsort(top2, axis=0)
    hi1_idx = np.take_along_axis(top2_idx, order[1:2], axis=0)[0]
    hi1 = np.take_along_axis(top2, order[1:2], axis=0)[0]
    hi2 = np.take_along_axis(top2, order[0:1], axis=0)[0]

    bot2_idx = np.argpartition(data, 1, axis=0)[:2]
    bot2 = np.take_along_axis(data, bot2_idx, axis=0)
    order = np.argsort(bot2, axis=0)
    lo1_idx = np.take_along_axis(bot2_idx, order[0:1], axis=0)[0]
    lo1 = np.take_along_axis(bot2, order[0:1], axis=0)[0]
    lo2 = np.take_along_axis(bot2, order[1:2], axis=0)[0]

    out = np.empty(m)
    members = np.arange(m)
    for mem in members:
        x = data[mem]
        loo_hi = np.where(hi1_idx == mem, hi2, hi1)
        loo_lo = np.where(lo1_idx == mem, lo2, lo1)
        deviation = np.maximum(np.abs(x - loo_hi), np.abs(x - loo_lo))
        r = x.max() - x.min()
        if r == 0.0:
            raise ZeroDivisionError(f"member {mem} has a constant field")
        out[mem] = deviation.max() / r
    return out


def enmax_for_member(ensemble: np.ndarray, member: int) -> float:
    """Eq. (10) for a single member."""
    dist = enmax_distribution(ensemble)
    if not 0 <= member < dist.shape[0]:
        raise IndexError(
            f"member {member} out of range 0..{dist.shape[0] - 1}"
        )
    return float(dist[member])


def enmax_ratio_test(
    e_nmax: float,
    distribution: np.ndarray,
    limit: float = ENMAX_RATIO_LIMIT,
) -> tuple[bool, bool]:
    """The two E_nmax acceptance criteria of Section 4.3.

    Returns ``(within_range, small_ratio)``:

    - at minimum, ``e_nmax`` (original vs reconstructed, eq. 2) "must
      certainly be smaller than the range between the maximum and minimum
      values" of the E_nmax distribution;
    - eq. (11): ``e_nmax / R_{E_nmax} <= 1/10``.
    """
    distribution = np.asarray(distribution, dtype=np.float64)
    if distribution.size < 2:
        raise ValueError("distribution needs at least 2 values")
    spread = float(distribution.max() - distribution.min())
    if spread == 0.0:
        raise ZeroDivisionError("degenerate E_nmax distribution (zero range)")
    within = bool(e_nmax <= spread)
    small = bool(e_nmax / spread <= limit)
    return within, small
