"""Persisted ensemble summaries — the production PVT workflow.

In practice (and in NCAR's later PyCECT tooling, which grew from this
paper's methodology) the 101-member trusted ensemble is run *once*, reduced
to a summary file, and every subsequent verification — new machine, new
compiler, new compressor — checks its handful of runs against that file
without touching the original ensemble.

An :class:`EnsembleSummary` stores, per variable:

- the per-grid-point ensemble mean and standard deviation (what Z-scores
  of new runs are computed against);
- the RMSZ distribution (eq. 7 over all members);
- the E_nmax distribution (eq. 10);
- the mean range (plain mean over valid points; the area-weighted
  variant lives in :meth:`repro.pvt.tool.CesmPvt.verify_port`).

Summaries serialize to the NCH container, so they are themselves ordinary
(compressed) data files.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.model.ensemble import CAMEnsemble
from repro.ncio.format import HistoryFile, HistoryFileWriter
from repro.pvt.enmax import enmax_distribution
from repro.pvt.zscore import EnsembleStats

__all__ = ["VariableSummary", "EnsembleSummary"]


@dataclass(frozen=True)
class VariableSummary:
    """Reduced statistics for one variable."""

    name: str
    shape: tuple[int, ...]
    mean: np.ndarray  # per valid grid point
    std: np.ndarray
    valid: np.ndarray  # boolean mask over the flattened field
    rmsz_dist: np.ndarray
    enmax_dist: np.ndarray
    gmean_range: tuple[float, float]

    def rmsz_of(self, field: np.ndarray) -> float:
        """RMSZ of a new run's field against the stored statistics."""
        field = np.asarray(field, dtype=np.float64).reshape(-1)
        if field.shape[0] != self.valid.shape[0]:
            raise ValueError(
                f"{self.name}: field has {field.shape[0]} points, summary "
                f"has {self.valid.shape[0]}"
            )
        v = field[self.valid]
        ok = self.std > 0
        if not ok.any():
            raise ValueError(f"{self.name}: degenerate summary spread")
        z = (v[ok] - self.mean[ok]) / self.std[ok]
        return float(np.sqrt(np.mean(z**2)))

    def verify(self, field: np.ndarray,
               mean_tolerance_factor: float = 1.0) -> dict:
        """Check one new run: RMSZ within distribution + mean-range test."""
        score = self.rmsz_of(field)
        flat = np.asarray(field, dtype=np.float64).reshape(-1)
        new_mean = float(flat[self.valid].mean())
        return self._verdict(score, new_mean, mean_tolerance_factor)

    def _verdict(self, score: float, new_mean: float,
                 mean_tolerance_factor: float) -> dict:
        lo, hi = float(self.rmsz_dist.min()), float(self.rmsz_dist.max())
        tol = 1e-9 * (1.0 + abs(hi))
        rmsz_ok = lo - tol <= score <= hi + tol
        g_lo, g_hi = self.gmean_range
        center = (g_lo + g_hi) / 2.0
        half = (g_hi - g_lo) / 2.0 * mean_tolerance_factor
        mean_ok = center - half <= new_mean <= center + half
        return {
            "rmsz": score,
            "rmsz_ok": bool(rmsz_ok),
            "mean": new_mean,
            "mean_ok": bool(mean_ok),
            "passed": bool(rmsz_ok and mean_ok),
        }

    def rmsz_stream(self):
        """A positional eq. (7) fold over this summary's statistics.

        Feed it the new run's field chunk by chunk (in order); its
        ``finalize()`` equals :meth:`rmsz_of` of the whole field without
        the field ever being in memory at once.
        """
        from repro.stream.folds import StreamingRMSZ

        return StreamingRMSZ(self.mean, self.std, self.valid)

    def verify_stream(self, chunks,
                      mean_tolerance_factor: float = 1.0) -> dict:
        """Chunked :meth:`verify`: same verdict dict, streamed field.

        ``chunks`` must be consecutive in-order pieces of the flattened
        field (any chunk sizes); see :mod:`repro.stream.chunks`.
        """
        fold = self.rmsz_stream()
        for chunk in chunks:
            fold.update(chunk)
        try:
            score = fold.finalize()
        except ValueError as exc:
            raise ValueError(f"{self.name}: {exc}") from None
        return self._verdict(score, fold.mean_valid,
                             mean_tolerance_factor)


class EnsembleSummary:
    """A set of per-variable summaries with NCH (de)serialization."""

    FORMAT_VERSION = 1

    def __init__(self, variables: dict[str, VariableSummary],
                 n_members: int):
        if not variables:
            raise ValueError("summary needs at least one variable")
        self.variables = variables
        self.n_members = n_members

    # -- construction -------------------------------------------------------

    @classmethod
    def from_ensemble(cls, ensemble: CAMEnsemble,
                      variables=None) -> "EnsembleSummary":
        """Reduce a generated ensemble to its verification summary."""
        names = (
            [spec.name for spec in ensemble.catalog]
            if variables is None
            else [v if isinstance(v, str) else v.name for v in variables]
        )
        out: dict[str, VariableSummary] = {}
        for name in names:
            fields = ensemble.ensemble_field(name)
            stats = EnsembleStats(fields)
            m = fields.shape[0]
            flat = fields.reshape(m, -1).astype(np.float64)
            valid = stats.valid
            mean = flat[:, valid].mean(axis=0)
            std = flat[:, valid].std(axis=0, ddof=1)
            gmeans = flat[:, valid].mean(axis=1)
            out[name] = VariableSummary(
                name=name,
                shape=fields.shape[1:],
                mean=mean,
                std=std,
                valid=valid,
                rmsz_dist=stats.distribution(),
                enmax_dist=enmax_distribution(fields),
                gmean_range=(float(gmeans.min()), float(gmeans.max())),
            )
        return cls(out, n_members=ensemble.n_members)

    # -- persistence ---------------------------------------------------------

    def write(self, path) -> Path:
        """Serialize to an NCH summary file (zlib-compressed)."""
        path = Path(path)
        with HistoryFileWriter(path, compression="zlib") as writer:
            writer.set_attr("format", "repro-pvt-summary")
            writer.set_attr("version", self.FORMAT_VERSION)
            writer.set_attr("n_members", self.n_members)
            writer.set_attr(
                "variables",
                {
                    name: {"shape": list(s.shape),
                           "gmean_range": list(s.gmean_range)}
                    for name, s in self.variables.items()
                },
            )
            for name, s in self.variables.items():
                writer.put_var(f"{name}.mean", s.mean, (f"{name}.nvalid",))
                writer.put_var(f"{name}.std", s.std, (f"{name}.nvalid",))
                writer.put_var(
                    f"{name}.valid", s.valid.astype(np.float32),
                    (f"{name}.npoints",),
                )
                writer.put_var(f"{name}.rmsz", s.rmsz_dist, ("member",))
                writer.put_var(f"{name}.enmax", s.enmax_dist, ("member",))
        return path

    @classmethod
    def read(cls, path) -> "EnsembleSummary":
        """Load a summary produced by :meth:`write`."""
        with HistoryFile(path) as fh:
            if fh.attrs.get("format") != "repro-pvt-summary":
                raise ValueError(f"{path} is not a PVT summary file")
            if fh.attrs.get("version") != cls.FORMAT_VERSION:
                raise ValueError(
                    f"unsupported summary version {fh.attrs.get('version')}"
                )
            meta = fh.attrs["variables"]
            out: dict[str, VariableSummary] = {}
            for name, info in meta.items():
                out[name] = VariableSummary(
                    name=name,
                    shape=tuple(info["shape"]),
                    mean=fh.get(f"{name}.mean"),
                    std=fh.get(f"{name}.std"),
                    valid=fh.get(f"{name}.valid").astype(bool),
                    rmsz_dist=fh.get(f"{name}.rmsz"),
                    enmax_dist=fh.get(f"{name}.enmax"),
                    gmean_range=tuple(info["gmean_range"]),
                )
            return cls(out, n_members=int(fh.attrs["n_members"]))

    # -- verification ---------------------------------------------------------

    def verify_runs(
        self,
        new_fields: dict[str, np.ndarray],
        mean_tolerance_factor: float = 1.0,
    ) -> dict[str, list[dict]]:
        """Verify new runs against the stored summary.

        ``new_fields`` maps variable name to ``(k, ...)`` arrays of k runs;
        returns per variable a list of per-run verdict dicts.
        """
        results: dict[str, list[dict]] = {}
        for name, runs in new_fields.items():
            try:
                summary = self.variables[name]
            except KeyError:
                raise KeyError(
                    f"summary has no variable {name!r}"
                ) from None
            runs = np.asarray(runs)
            results[name] = [
                summary.verify(run, mean_tolerance_factor) for run in runs
            ]
        return results
