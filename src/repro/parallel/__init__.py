"""Parallel execution substrate.

The paper's workflow compresses 170 variables x 9 variants x up to 101
members — embarrassingly parallel across variables.  This package provides
a process-pool map with chunked work partitioning and deterministic result
ordering, so the verification harness scales to paper-size runs on a
multi-core node.
"""

from repro.parallel.executor import parallel_map, effective_workers
from repro.parallel.partition import chunk_indices, partition_work

__all__ = [
    "parallel_map",
    "effective_workers",
    "chunk_indices",
    "partition_work",
]
