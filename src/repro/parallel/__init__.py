"""Parallel execution subsystem.

The paper's workflow compresses 170 variables x 13 variants x up to 101
members — embarrassingly parallel across variables, and long enough that
one hung codec or crashed worker must cost its task, never the campaign.
This package provides :class:`Executor` / :func:`parallel_map`: a
deterministic, order-preserving map over pluggable backends (``serial``,
``thread``, ``process``) with per-task timeouts, bounded retries with
exponential backoff, and structured :class:`TaskFailure` degradation —
collected into a :class:`MapResult` or re-raised per policy — plus
chunked work partitioning for paper-size runs.

Backend, retry budget, and timeout come from call arguments, the
process-wide :func:`configure` override (the CLI's
``--backend/--retries/--task-timeout`` flags), or the ``REPRO_BACKEND``
/ ``REPRO_RETRIES`` / ``REPRO_TASK_TIMEOUT`` / ``REPRO_WORKERS``
environment knobs, in that order.  See ``docs/parallel.md``.

On the process backend, array payloads can travel through POSIX shared
memory instead of the pool's pickle pipes: ``Executor(shm=True)`` (or
``REPRO_SHM=1``) replaces each large array with a pickled
:class:`ArrayRef` descriptor while the bytes cross zero-copy via
:mod:`multiprocessing.shared_memory`; segment lifecycle is tied to the
executor's failure paths and orphans from killed parents are reclaimed
by :func:`reclaim_orphans`.  See ``docs/streaming.md``.
"""

from repro.parallel.clock import SYSTEM_CLOCK, Clock, SystemClock
from repro.parallel.executor import Executor, effective_workers, parallel_map
from repro.parallel.failures import (
    MapResult,
    TaskError,
    TaskFailure,
    WorkerCrashError,
)
from repro.parallel.partition import chunk_indices, partition_work
from repro.parallel.shm import (
    ArrayRef,
    ShmTransport,
    reclaim_orphans,
    shm_enabled,
)
from repro.parallel.policy import (
    BACKENDS,
    ExecutionPolicy,
    configure,
    default_policy,
    executing,
    reset_policy,
)

__all__ = [
    "ArrayRef",
    "BACKENDS",
    "Clock",
    "ExecutionPolicy",
    "Executor",
    "MapResult",
    "SYSTEM_CLOCK",
    "ShmTransport",
    "SystemClock",
    "TaskError",
    "TaskFailure",
    "WorkerCrashError",
    "chunk_indices",
    "configure",
    "default_policy",
    "effective_workers",
    "executing",
    "parallel_map",
    "partition_work",
    "reclaim_orphans",
    "reset_policy",
    "shm_enabled",
]
