"""Structured task-failure records for the execution subsystem.

A large compression-evaluation sweep (the paper's 170 variables x 13
variants) must survive individual task failures without invalidating the
whole campaign: one hung codec or crashed worker may cost *its* cell of a
table, never the table.  This module defines the vocabulary the
:class:`repro.parallel.executor.Executor` uses to make that contract
explicit:

- :class:`TaskFailure` — the immutable record of one task that exhausted
  its retry budget (which task, what kind of failure, how many attempts);
- :class:`MapResult` — an ordered map result in which failed slots hold
  their :class:`TaskFailure` instead of poisoning the other results;
- :class:`TaskError` — the exception raised under the ``"raise"`` failure
  policy when no original exception object is available (timeouts and
  worker crashes have no Python exception to re-raise);
- :class:`WorkerCrashError` — raised by in-process backends (and the
  fault-injection harness) to *emulate* a worker-process crash, so the
  crash-handling path is testable on every backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["MapResult", "TaskError", "TaskFailure", "WorkerCrashError"]

#: The failure kinds a task attempt can be charged with.
FAILURE_KINDS = ("exception", "timeout", "crash")


class WorkerCrashError(RuntimeError):
    """A worker "died" without returning a result.

    On the ``process`` backend a real crash surfaces as
    ``BrokenProcessPool``; the ``serial`` and ``thread`` backends cannot
    lose a process, so the fault-injection harness raises this instead
    and the executor books it as a ``"crash"`` of the whole chunk —
    identical accounting, no ``os._exit`` in the test process.
    """


@dataclass(frozen=True)
class TaskFailure:
    """One task that exhausted its retries, as recorded in a map result."""

    index: int         #: position of the task in the input sequence
    kind: str          #: ``"exception"`` | ``"timeout"`` | ``"crash"``
    error_type: str    #: exception class name (or a kind-specific label)
    message: str       #: human-readable cause
    attempts: int      #: attempts charged before giving up
    traceback: str = field(default="", compare=False)
    #: The original exception object when it survived the trip back from
    #: the worker (picklable); ``None`` for timeouts and crashes.
    exc: BaseException | None = field(default=None, compare=False,
                                      repr=False)

    def __str__(self) -> str:
        return (f"task {self.index} failed after {self.attempts} "
                f"attempt(s) [{self.kind}]: {self.error_type}: "
                f"{self.message}")

    def as_error(self) -> BaseException:
        """The exception to raise for this failure (``"raise"`` policy).

        Prefers the original exception object so callers keep matching on
        their own error types; timeouts and crashes, which have no
        original exception, surface as :class:`TaskError`.
        """
        if self.exc is not None:
            return self.exc
        return TaskError(self)


class TaskError(RuntimeError):
    """Raised when a task's failure has no original exception to re-raise."""

    def __init__(self, failure: TaskFailure) -> None:
        super().__init__(str(failure))
        self.failure = failure


class MapResult:
    """Ordered results of one :meth:`Executor.map` call.

    ``results[i]`` is task *i*'s value, or its :class:`TaskFailure` when
    the task exhausted its retries under the ``"collect"`` policy.  The
    successful slots are exactly the values ``list(map(fn, args))`` would
    have produced at those positions — completed work is never discarded.
    """

    def __init__(self, results: list, failures: list[TaskFailure]) -> None:
        self.results = results
        self.failures = list(failures)

    @property
    def ok(self) -> bool:
        """True when every task succeeded."""
        return not self.failures

    @property
    def values(self) -> list:
        """The plain result list; raises on the first failure if any."""
        if self.failures:
            raise self.failures[0].as_error()
        return list(self.results)

    def value(self, index: int, default: Any = None) -> Any:
        """Task ``index``'s result, or ``default`` if it failed."""
        slot = self.results[index]
        return default if isinstance(slot, TaskFailure) else slot

    def failed_indices(self) -> list[int]:
        """Indices of the tasks that failed, ascending."""
        return sorted(f.index for f in self.failures)

    def summary(self) -> str:
        """One-line failure summary for logs and CLI output."""
        if not self.failures:
            return f"all {len(self.results)} task(s) succeeded"
        kinds: dict[str, int] = {}
        for f in self.failures:
            kinds[f.kind] = kinds.get(f.kind, 0) + 1
        detail = ", ".join(f"{n} {kind}" for kind, n in sorted(kinds.items()))
        return (f"{len(self.failures)}/{len(self.results)} task(s) failed "
                f"({detail}) at indices {self.failed_indices()}")

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> Any:
        return self.results[index]

    def __iter__(self) -> Iterator:
        return iter(self.results)

    def __repr__(self) -> str:
        return (f"MapResult(tasks={len(self.results)}, "
                f"failures={len(self.failures)})")
