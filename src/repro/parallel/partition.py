"""Work partitioning helpers.

Splitting a task list into contiguous, near-equal chunks is the standard
MPI-style decomposition; keeping chunks contiguous preserves memory
locality when tasks index into shared arrays.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

__all__ = ["chunk_indices", "partition_work"]

T = TypeVar("T")


def chunk_indices(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` ranges covering ``n_items``.

    The first ``n_items % n_chunks`` chunks get one extra item (the usual
    balanced block distribution); empty chunks are omitted, so fewer than
    ``n_chunks`` ranges may be returned.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be non-negative, got {n_items}")
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be positive, got {n_chunks}")
    base, extra = divmod(n_items, n_chunks)
    ranges = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        if size == 0:
            break
        ranges.append((start, start + size))
        start += size
    return ranges


def partition_work(items: Sequence[T], n_chunks: int) -> list[list[T]]:
    """Split ``items`` into at most ``n_chunks`` contiguous balanced lists."""
    return [
        list(items[a:b]) for a, b in chunk_indices(len(items), n_chunks)
    ]
