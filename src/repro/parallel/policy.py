"""Execution policy: backend choice, retry budget, timeout, backoff.

One frozen :class:`ExecutionPolicy` travels from the configuration
surface (CLI flags, ``REPRO_BACKEND`` / ``REPRO_RETRIES`` /
``REPRO_TASK_TIMEOUT`` environment knobs, or :func:`configure`) into the
:class:`repro.parallel.executor.Executor`, so every ``parallel_map`` call
in the pipeline — PVT sweeps, table drivers, time-series conversion —
inherits the same robustness settings without threading arguments
through every layer.

Resolution order for each field: explicit call argument, then the
process-wide override installed by :func:`configure` (what the CLI's
``--backend/--retries/--task-timeout`` flags use), then the environment,
then the dataclass default.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator

from repro import config

__all__ = [
    "BACKENDS",
    "ExecutionPolicy",
    "configure",
    "default_policy",
    "executing",
    "reset_policy",
]

#: Recognized backend names, in increasing isolation order.
BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a map executes: where tasks run and how failures are handled."""

    backend: str = "process"          #: ``serial`` | ``thread`` | ``process``
    retries: int = 0                  #: extra attempts after the first
    task_timeout: float | None = None  #: per-task deadline in seconds
    backoff_base: float = 0.05        #: delay before the first retry (s)
    backoff_factor: float = 2.0       #: growth per further retry
    backoff_max: float = 2.0          #: delay ceiling (s)

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{', '.join(BACKENDS)}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be positive, got {self.task_timeout}"
            )

    def backoff_delay(self, failed_attempts: int) -> float:
        """Backoff before the retry following ``failed_attempts`` tries.

        Exponential with a ceiling: ``base * factor**(n-1)`` capped at
        ``backoff_max``; zero for tasks that have not failed yet.
        """
        if failed_attempts < 1 or self.backoff_base <= 0:
            return 0.0
        delay = self.backoff_base * self.backoff_factor ** (failed_attempts - 1)
        return min(delay, self.backoff_max)

    def merged(self, *, backend: str | None = None,
               retries: int | None = None,
               task_timeout: float | None = None) -> "ExecutionPolicy":
        """A copy with the given (non-``None``) fields replaced."""
        kwargs: dict = {}
        if backend is not None:
            kwargs["backend"] = backend
        if retries is not None:
            kwargs["retries"] = retries
        if task_timeout is not None:
            kwargs["task_timeout"] = task_timeout
        return replace(self, **kwargs) if kwargs else self


def _env_backend() -> str | None:
    raw = config.env_str("REPRO_BACKEND").strip().lower()
    if not raw:
        return None
    if raw not in BACKENDS:
        raise ValueError(
            f"REPRO_BACKEND={raw!r} is not a backend; expected one of "
            f"{', '.join(BACKENDS)}"
        )
    return raw


def env_policy() -> ExecutionPolicy:
    """The policy the environment alone describes."""
    return ExecutionPolicy().merged(
        backend=_env_backend(),
        retries=config.env_int_opt("REPRO_RETRIES"),
        task_timeout=config.env_float_opt("REPRO_TASK_TIMEOUT"),
    )


#: Process-wide override installed by :func:`configure`; ``None`` defers
#: to the environment (mirrors the tri-state gating of repro.obs/check).
_override: ExecutionPolicy | None = None


def default_policy() -> ExecutionPolicy:
    """The policy an ``Executor`` starts from when given no arguments."""
    if _override is not None:
        return _override
    return env_policy()


def configure(*, backend: str | None = None, retries: int | None = None,
              task_timeout: float | None = None,
              policy: ExecutionPolicy | None = None) -> ExecutionPolicy:
    """Install a process-wide default policy (the CLI flag seam).

    Starts from the current default (so repeated calls compose), applies
    the given fields, installs and returns the result.  ``policy``
    replaces the baseline outright before the field overrides apply.
    """
    global _override
    base = policy if policy is not None else default_policy()
    _override = base.merged(backend=backend, retries=retries,
                            task_timeout=task_timeout)
    return _override


def reset_policy() -> None:
    """Drop the :func:`configure` override (environment control resumes)."""
    global _override
    _override = None


@contextmanager
def executing(*, backend: str | None = None, retries: int | None = None,
              task_timeout: float | None = None) -> Iterator[ExecutionPolicy]:
    """Scope a policy override to a block (test/driver convenience)."""
    global _override
    prev = _override
    try:
        yield configure(backend=backend, retries=retries,
                        task_timeout=task_timeout)
    finally:
        _override = prev
