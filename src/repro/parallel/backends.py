"""Execution backends: where a chunk of tasks actually runs.

The :class:`repro.parallel.executor.Executor` orchestrates rounds of
chunk submissions and folds the outcomes; a backend's only job is to run
one submitted chunk and expose enough lifecycle control for the executor
to survive misbehaving work:

``serial``
    Runs the chunk inline on the calling thread.  No isolation, no
    preemption — timeouts are detected *post hoc* from the chunk
    runner's clock measurements — but lambdas and closures work, and
    with a virtual clock the whole retry/timeout schedule is testable
    in microseconds.

``thread``
    A ``ThreadPoolExecutor``.  Shares memory with the caller (no
    pickling), good for I/O-bound tasks.  Python threads cannot be
    killed, so a timed-out chunk is *abandoned*: its future is dropped
    and any result it later produces is discarded.  An abandoned thread
    still occupies a pool slot (and, being non-daemonic, would delay
    interpreter exit if it never returns), so thread timeouts are meant
    for hung-but-finite work.

``process``
    A ``ProcessPoolExecutor``.  Full isolation: a timed-out or crashed
    worker is killed and the pool rebuilt (:meth:`recycle`), which is
    the only way to reclaim a truly hung task.  Killing the pool aborts
    every in-flight chunk, so the executor re-runs the innocent ones —
    results already folded are never lost.
"""

from __future__ import annotations

from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, Callable

__all__ = ["Backend", "make_backend"]


class Backend:
    """Lifecycle interface the executor drives."""

    name: str = "?"
    #: True when handling a timeout kills *all* in-flight work (the
    #: executor then recycles the pool and reschedules the victims).
    kills_on_timeout: bool = False

    def submit(self, runner: Callable, payload: Any) -> Future:
        """Run ``runner(payload)``; the future resolves to its outcome."""
        raise NotImplementedError

    def recycle(self, kill: bool = False) -> None:
        """Replace the worker pool (``kill=True``: terminate it first)."""

    def close(self, kill: bool = False) -> None:
        """Release the pool.  ``kill=True`` must never block on hung work."""


class _SerialBackend(Backend):
    """Inline execution; a submit *is* the run."""

    name = "serial"

    def submit(self, runner: Callable, payload: Any) -> Future:
        fut: Future = Future()
        fut.set_running_or_notify_cancel()
        try:
            fut.set_result(runner(payload))
        except Exception as exc:
            fut.set_exception(exc)
        return fut


class _ThreadBackend(Backend):
    """Shared-memory thread pool; timeouts abandon, never kill."""

    name = "thread"

    def __init__(self, workers: int) -> None:
        self._workers = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-exec")

    def submit(self, runner: Callable, payload: Any) -> Future:
        return self._pool.submit(runner, payload)

    def recycle(self, kill: bool = False) -> None:
        self._pool.shutdown(wait=not kill, cancel_futures=kill)
        self._pool = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-exec")

    def close(self, kill: bool = False) -> None:
        # Threads cannot be terminated; a kill-close drops queued work
        # and leaves any already-hung thread to finish on its own.
        self._pool.shutdown(wait=not kill, cancel_futures=True)


class _ProcessBackend(Backend):
    """Process pool with terminate-and-rebuild recovery."""

    name = "process"
    kills_on_timeout = True

    def __init__(self, workers: int) -> None:
        self._workers = workers
        self._pool = ProcessPoolExecutor(max_workers=workers)

    def submit(self, runner: Callable, payload: Any) -> Future:
        return self._pool.submit(runner, payload)

    def _terminate(self) -> None:
        procs = getattr(self._pool, "_processes", None) or {}
        for proc in list(procs.values()):
            if proc.is_alive():
                proc.terminate()

    def recycle(self, kill: bool = False) -> None:
        if kill:
            self._terminate()
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = ProcessPoolExecutor(max_workers=self._workers)

    def close(self, kill: bool = False) -> None:
        if kill:
            # A hung worker would block a graceful shutdown forever:
            # terminate first, then reap without waiting.
            self._terminate()
            self._pool.shutdown(wait=False, cancel_futures=True)
        else:
            self._pool.shutdown(wait=True)


def make_backend(name: str, workers: int) -> Backend:
    """Instantiate the backend called ``name`` with ``workers`` slots."""
    if name == "serial":
        return _SerialBackend()
    if name == "thread":
        return _ThreadBackend(workers)
    if name == "process":
        return _ProcessBackend(workers)
    raise ValueError(f"unknown backend {name!r}")
