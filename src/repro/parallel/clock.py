"""The executor's injectable clock.

Retry backoff and timeout bookkeeping must be testable without real
sleeping: the chaos suite swaps :class:`SystemClock` for
:class:`repro.testing.FakeClock`, which advances a virtual ``now`` on
``sleep`` so an exponential-backoff schedule (or a serial-backend
timeout) runs in microseconds.  This is the one module outside
:mod:`repro.obs` allowed to touch the wall clock (REP009 is suppressed
on those lines): scheduling deadlines are control flow, not performance
timing, and routing them through a span would invert the dependency.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "SystemClock", "SYSTEM_CLOCK"]


class Clock:
    """Minimal clock interface: a monotonic ``now`` and a ``sleep``."""

    def now(self) -> float:
        """Current monotonic time in seconds."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (virtual clocks advance instead)."""
        raise NotImplementedError


class SystemClock(Clock):
    """The real wall clock (monotonic, immune to NTP steps)."""

    def now(self) -> float:
        """Current monotonic time in seconds."""
        return time.monotonic()  # repro: noqa[REP009]

    def sleep(self, seconds: float) -> None:
        """Really sleep."""
        if seconds > 0:
            time.sleep(seconds)


#: Shared default instance; stateless, so one is enough.
SYSTEM_CLOCK = SystemClock()
