"""Zero-copy array transport over POSIX shared memory.

The process backend normally pickles every task payload and result
through the pool's pipes, so an N-byte array costs ~2N of serialization
plus two copies per direction.  This module moves the array *bytes* into
``multiprocessing.shared_memory`` segments and sends only pickled
:class:`ArrayRef` descriptors (segment name, shape, dtype) through the
pipe; workers attach the segment and map the array in place.

Ownership is strictly parent-side.  The :class:`ShmTransport` that a
:class:`~repro.parallel.executor.Executor` map run creates is the single
ledger of live segments: every submitted chunk's segments are registered
under the chunk's key and released (closed + unlinked) the moment the
chunk settles — success, failure, timeout, pool crash, or abandoned
round.  Workers only ever *attach*: they never unlink, and they detach
before returning, so a killed worker cannot leak anything the parent
does not already know about.

Two failure modes need extra care:

- **Parent death.**  A SIGKILLed parent takes the resource tracker with
  it, orphaning any in-flight segments.  Segment names embed the owner
  pid (``repro-shm-<pid>-<seq>``) so :func:`reclaim_orphans` can sweep
  ``/dev/shm`` for segments whose owner is gone and unlink them; every
  new :class:`ShmTransport` runs that sweep once, so long-lived services
  self-heal from earlier hard kills.
- **Result aliasing.**  A worker's return value may be a view into an
  attached segment (e.g. an identity transform).  Returning such a view
  after the segment closes means reading unmapped memory, so
  :meth:`Attachments.detach` copies any array that may share memory
  with an attachment before the segment is closed.

Environment knobs: ``REPRO_SHM`` turns the transport on for every
process-backend map (it is always on for ``repro.stream`` parallel
pipelines); ``REPRO_SHM_MIN_BYTES`` sets the array size below which
pickling is kept (descriptor + attach overhead beats a copy only for
arrays of ~64 KiB and up).  See ``docs/streaming.md``.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from repro import config, obs

__all__ = [
    "ArrayRef",
    "Attachments",
    "DEFAULT_MIN_BYTES",
    "ShmTransport",
    "open_payload",
    "reclaim_orphans",
    "shm_enabled",
    "shm_min_bytes",
]

#: Arrays smaller than this travel by pickle: a descriptor round trip
#: (create + attach + two mmaps) costs more than copying a few KiB.
DEFAULT_MIN_BYTES = 1 << 16

#: Segment-name prefix; the embedded pid makes orphans attributable.
_PREFIX = "repro-shm"
_NAME_RE = re.compile(r"^repro-shm-(\d+)-\d+$")

_SEGMENTS = obs.counter("parallel.shm.segments")
_BYTES = obs.counter("parallel.shm.bytes")
_RECLAIMED = obs.counter("parallel.shm.reclaimed")
_LIVE = obs.gauge("parallel.shm.live")


def shm_enabled() -> bool:
    """True when ``REPRO_SHM`` asks for descriptor transport by default."""
    return config.env_flag("REPRO_SHM")


def shm_min_bytes() -> int:
    """Array size threshold below which payloads stay pickled."""
    value = config.env_int_opt("REPRO_SHM_MIN_BYTES")
    if value is None or value < 0:
        return DEFAULT_MIN_BYTES
    return value


@dataclass(frozen=True)
class ArrayRef:
    """Picklable descriptor of one array living in a shared segment."""

    segment: str
    shape: tuple[int, ...]
    dtype: str
    nbytes: int


def _walk(obj: Any, fn: Any) -> Any:
    """Rebuild ``obj`` with ``fn`` applied to every leaf.

    Containers (tuple/list/dict) are rebuilt only when a leaf actually
    changed, so pickle-transported payload parts stay identical objects.
    """
    if isinstance(obj, tuple):
        walked = [_walk(item, fn) for item in obj]
        if all(a is b for a, b in zip(walked, obj)):
            return obj
        return tuple(walked)
    if isinstance(obj, list):
        walked = [_walk(item, fn) for item in obj]
        if all(a is b for a, b in zip(walked, obj)):
            return obj
        return walked
    if isinstance(obj, dict):
        walked_d = {key: _walk(value, fn) for key, value in obj.items()}
        if all(walked_d[key] is obj[key] for key in obj):
            return obj
        return walked_d
    return fn(obj)


class ShmTransport:
    """Parent-side segment ledger for one executor map run.

    ``encode(key, payload)`` copies each large array in ``payload`` into
    a fresh segment and substitutes an :class:`ArrayRef`; the segments
    are recorded under ``key`` (the submitted chunk's index tuple) and
    destroyed by ``release(key)`` when that chunk settles, or by
    ``release_all()`` when the run ends.  Both are idempotent, so every
    failure path can release defensively.
    """

    def __init__(self, min_bytes: int | None = None) -> None:
        self.min_bytes = (shm_min_bytes() if min_bytes is None
                          else min_bytes)
        self._seq = 0
        self._refs: dict[Any, list[shared_memory.SharedMemory]] = {}
        reclaim_orphans()

    # -- encoding (parent) ------------------------------------------------

    def _new_segment(self, nbytes: int) -> shared_memory.SharedMemory:
        while True:
            self._seq += 1
            name = f"{_PREFIX}-{os.getpid()}-{self._seq}"
            try:
                return shared_memory.SharedMemory(
                    name=name, create=True, size=nbytes)
            except FileExistsError:
                continue  # stale name from a recycled pid; try the next

    def _publish(self, array: np.ndarray,
                 owned: list[shared_memory.SharedMemory]) -> ArrayRef:
        data = np.ascontiguousarray(array)
        seg = self._new_segment(max(data.nbytes, 1))
        owned.append(seg)
        view = np.ndarray(data.shape, dtype=data.dtype, buffer=seg.buf)
        view[...] = data
        _SEGMENTS.add(1)
        _BYTES.add(data.nbytes)
        return ArrayRef(segment=seg.name, shape=tuple(data.shape),
                        dtype=data.dtype.str, nbytes=data.nbytes)

    def encode(self, key: Any, payload: Any) -> Any:
        """Replace large arrays in ``payload`` with :class:`ArrayRef`\\ s.

        The created segments are registered under ``key`` until
        :meth:`release` is called with the same key.
        """
        owned: list[shared_memory.SharedMemory] = []

        def leaf(obj: Any) -> Any:
            if (isinstance(obj, np.ndarray)
                    and obj.nbytes >= self.min_bytes
                    and obj.dtype != object):
                return self._publish(obj, owned)
            return obj

        try:
            encoded = _walk(payload, leaf)
        except BaseException:
            for seg in owned:
                _destroy(seg)
            raise
        if owned:
            self._refs.setdefault(key, []).extend(owned)
            _LIVE.set(self.live_segments())
        return encoded

    # -- lifecycle (parent) -----------------------------------------------

    def live_segments(self) -> int:
        """Number of segments currently registered (for tests/obs)."""
        return sum(len(segs) for segs in self._refs.values())

    def release(self, key: Any) -> None:
        """Destroy every segment registered under ``key`` (idempotent)."""
        for seg in self._refs.pop(key, []):
            _destroy(seg)
        _LIVE.set(self.live_segments())

    def release_all(self) -> None:
        """Destroy every registered segment (end-of-run backstop)."""
        for key in list(self._refs):
            self.release(key)


def _destroy(seg: shared_memory.SharedMemory) -> None:
    try:
        seg.close()
    except OSError:  # pragma: no cover - close on a dead mapping
        pass
    try:
        seg.unlink()
    except FileNotFoundError:
        pass  # already reclaimed (e.g. by an orphan sweep)


# -- decoding (worker) -----------------------------------------------------


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to ``name`` without adopting ownership.

    ``SharedMemory(name)`` registers the segment with the attaching
    process's resource tracker, which would unlink it when the *worker*
    exits — stealing the parent's segment and spamming leak warnings.
    Python 3.13 grew ``track=False`` for exactly this; on older runtimes
    the registration call is suppressed for the duration of the attach
    (unregistering *after* the fact is wrong under the fork start
    method, where parent and worker share one tracker process and the
    worker would erase the parent's registration).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None  # type: ignore
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class Attachments:
    """A worker's open attachments for one decoded payload."""

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self._views: list[np.ndarray] = []

    def attach(self, ref: ArrayRef) -> np.ndarray:
        """Map ``ref``'s segment and return the array view."""
        seg = _attach(ref.segment)
        self._segments.append(seg)
        view: np.ndarray = np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf)
        self._views.append(view)
        return view

    def detach(self, value: Any) -> Any:
        """Copy out any part of ``value`` aliasing an attached segment.

        Results go back to the parent by pickle *after* the attachments
        close, so a view into a segment must be materialized first.
        ``np.may_share_memory`` is cheap and over-approximates — a
        needless copy is safe, a missed alias is a crash.
        """
        def leaf(obj: Any) -> Any:
            if isinstance(obj, np.ndarray) and any(
                    np.may_share_memory(obj, view)
                    for view in self._views):
                return np.array(obj, copy=True)
            return obj

        return _walk(value, leaf)

    def close(self) -> None:
        """Drop the views and close every mapping (worker-side only)."""
        self._views.clear()
        for seg in self._segments:
            try:
                seg.close()
            except OSError:  # pragma: no cover - already unmapped
                pass
        self._segments.clear()


def open_payload(payload: Any) -> tuple[Any, Attachments]:
    """Resolve every :class:`ArrayRef` in ``payload`` to a live view.

    Returns the decoded payload and the :class:`Attachments` holding the
    mappings; the caller must ``detach`` its results and ``close`` the
    attachments before returning.
    """
    atts = Attachments()

    def leaf(obj: Any) -> Any:
        if isinstance(obj, ArrayRef):
            return atts.attach(obj)
        return obj

    try:
        return _walk(payload, leaf), atts
    except BaseException:
        atts.close()
        raise


# -- orphan recovery -------------------------------------------------------


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


def reclaim_orphans(shm_dir: str = "/dev/shm") -> int:
    """Unlink transport segments whose owning process is dead.

    A parent killed with SIGKILL cannot release its segments and its
    resource tracker dies with it; the pid embedded in each segment name
    makes such leaks attributable, and this sweep (run by every new
    :class:`ShmTransport`) reclaims them.  Returns the number of
    segments removed.
    """
    try:
        names = os.listdir(shm_dir)
    except OSError:
        return 0  # no POSIX shm mount (non-Linux); nothing to sweep
    reclaimed = 0
    for name in names:
        match = _NAME_RE.match(name)
        if match is None or _pid_alive(int(match.group(1))):
            continue
        try:
            os.unlink(os.path.join(shm_dir, name))
        except OSError:
            continue  # raced with another sweep
        reclaimed += 1
    if reclaimed:
        _RECLAIMED.add(reclaimed)
    return reclaimed
