"""Process-pool map with deterministic ordering.

``parallel_map(fn, args)`` behaves like ``list(map(fn, args))`` but fans
the calls out over worker processes.  Results always come back in input
order; worker exceptions propagate to the caller.  With ``workers <= 1``
(or a single task) it degrades to a plain loop, which keeps the same code
path debuggable and avoids pool overhead for small runs.

Under ``REPRO_TRACE=1`` the whole map is timed as a ``parallel.map`` span
and the span context crosses the pool: each task runs inside
:class:`repro.obs.WorkerTask`, which buffers the worker's spans/metrics
and hands them back with the result so the parent can merge them into its
sinks (nested under the submitting span, worker pid/tid preserved).
"""

from __future__ import annotations

import functools
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro import obs
from repro.check import hooks

__all__ = ["parallel_map", "effective_workers"]

T = TypeVar("T")
R = TypeVar("R")

_TASKS = obs.counter("parallel.tasks")


def _require_picklable_callable(fn: Callable) -> None:
    """Reject callables that cannot cross a process boundary.

    Lambdas and functions defined inside another function pickle by
    qualified name, which fails deep inside the pool with an opaque
    traceback; surface that as a clear TypeError *before* any worker is
    spawned.  (The REP006 lint rule is this check's static twin.)
    """
    probe = fn
    while isinstance(probe, functools.partial):
        probe = probe.func
    qualname = getattr(probe, "__qualname__", None)
    if qualname is None:
        return  # builtins / C callables pickle by reference
    if qualname == "<lambda>":
        raise TypeError(
            "parallel_map cannot send a lambda to worker processes; "
            "define the task as a module-level function"
        )
    if "<locals>" in qualname:
        raise TypeError(
            f"parallel_map cannot send the locally-defined function "
            f"{qualname!r} to worker processes; move it to module level "
            "so it can be pickled"
        )


def effective_workers(workers: int | None = None,
                      n_tasks: int | None = None) -> int:
    """Resolve a worker count: default CPU count, capped by task count."""
    if workers is None or workers <= 0:
        workers = os.cpu_count() or 1
    if n_tasks is not None:
        workers = min(workers, max(n_tasks, 1))
    return max(workers, 1)


def parallel_map(
    fn: Callable[[T], R],
    args: Iterable[T],
    workers: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """Map ``fn`` over ``args`` across processes, preserving order.

    ``fn`` and each argument must be picklable (module-level functions and
    plain data).  ``chunksize > 1`` batches tasks per IPC round trip,
    which pays off when individual tasks are sub-millisecond.
    """
    items: Sequence[T] = list(args)
    if chunksize < 1:
        raise ValueError(f"chunksize must be positive, got {chunksize}")
    n = effective_workers(workers, len(items))
    _TASKS.add(len(items))
    if n == 1 or len(items) <= 1:
        with obs.span("parallel.map", tasks=len(items), workers=1):
            results = [fn(item) for item in items]
        if items and hooks.active():
            # REPRO_SANITIZE: replay the first task and require identical
            # output, catching nondeterministic task functions while the
            # serial path keeps them observable.
            hooks.check_serial_replay(fn, items[0], results[0])
        return results
    _require_picklable_callable(fn)
    if not obs.active():
        with ProcessPoolExecutor(max_workers=n) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    with obs.span("parallel.map", tasks=len(items), workers=n) as sp:
        # mem is resolved here, parent-side: a profiling_memory() override
        # active in the parent turns on tracemalloc in every worker too.
        task = obs.WorkerTask(fn, parent=sp.name, depth=obs.current_depth(),
                              mem=obs.mem_active())
        with ProcessPoolExecutor(max_workers=n) as pool:
            packed = list(pool.map(task, items, chunksize=chunksize))
    results = []
    for result, events in packed:
        obs.merge_events(events)
        results.append(result)
    return results
