"""Fault-tolerant multi-backend map with deterministic ordering.

``parallel_map(fn, args)`` still behaves like ``list(map(fn, args))`` —
results in input order, worker exceptions propagated — but it is now a
thin wrapper over :class:`Executor`, which adds the robustness a
paper-scale sweep (170 variables x 13 variants) needs:

- **pluggable backends** (``serial`` / ``thread`` / ``process``), chosen
  per call, per :class:`~repro.parallel.policy.ExecutionPolicy`, or via
  ``REPRO_BACKEND``;
- **per-task timeouts** — a chunk's deadline is ``task_timeout`` times
  its length; on expiry the process backend kills and rebuilds the pool
  (reclaiming truly hung workers), the thread backend abandons the
  future, and the serial backend detects overruns post hoc from the
  injectable clock;
- **bounded retries with exponential backoff** — each failed task is
  retried up to ``retries`` times, with the delay between rounds growing
  per :meth:`ExecutionPolicy.backoff_delay` and recorded as a
  ``parallel.retry`` span;
- **graceful degradation** — a task that exhausts its budget becomes a
  structured :class:`~repro.parallel.failures.TaskFailure`: re-raised
  under the default ``on_failure="raise"`` policy (the original
  exception object when it survived pickling, so caller-side ``except
  SomeError`` keeps working), or collected into a
  :class:`~repro.parallel.failures.MapResult` under ``"collect"`` so one
  bad cell never poisons a table.

Execution proceeds in *rounds*: pending tasks are chunked, submitted
(at most ``workers`` chunks in flight so deadlines stay honest), and
their outcomes folded; tasks whose attempts are exhausted are settled,
the rest carry into the next round after the backoff sleep.  A crashed
process pool charges one ``crash`` attempt to every in-flight chunk
(the culprit is unknowable), is rebuilt, and the survivors re-run —
results already folded are never discarded.

Under ``REPRO_TRACE=1`` the map is a ``parallel.map`` span;
``parallel.tasks`` / ``parallel.retries`` / ``parallel.failures``
counters track the lifecycle.  On the process backend each task runs
inside :class:`repro.obs.WorkerTask`, whose buffered events are merged
parent-side *only for successful attempts* — a retried attempt's events
are discarded with it, so the aggregator sees each task exactly once.
On the thread backend worker spans nest via thread-local parent seeds
and flow to the shared sinks directly.
"""

from __future__ import annotations

import functools
import os
import pickle
import traceback as _traceback
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait as _wait
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro import config, obs
from repro.check import hooks
from repro.obs import core as _obs_core
from repro.parallel import shm as _shm
from repro.parallel.backends import Backend, make_backend
from repro.parallel.clock import SYSTEM_CLOCK, Clock
from repro.parallel.failures import (
    MapResult,
    TaskFailure,
    WorkerCrashError,
)
from repro.parallel.policy import ExecutionPolicy, default_policy

__all__ = ["Executor", "parallel_map", "effective_workers"]

T = TypeVar("T")
R = TypeVar("R")

_TASKS = obs.counter("parallel.tasks")
_RETRIES = obs.counter("parallel.retries")
_FAILURES = obs.counter("parallel.failures")
_TASK_H = obs.histogram("parallel.task_s")

#: Valid ``on_failure`` policies for :meth:`Executor.map`.
ON_FAILURE = ("raise", "collect")


def _require_picklable_callable(fn: Callable) -> None:
    """Reject callables that cannot cross a process boundary.

    Lambdas and functions defined inside another function pickle by
    qualified name, which fails deep inside the pool with an opaque
    traceback; surface that as a clear TypeError *before* any worker is
    spawned.  (The REP006 lint rule is this check's static twin.)
    """
    probe = fn
    while isinstance(probe, functools.partial):
        probe = probe.func
    qualname = getattr(probe, "__qualname__", None)
    if qualname is None:
        return  # builtins / C callables pickle by reference
    if qualname == "<lambda>":
        raise TypeError(
            "parallel_map cannot send a lambda to worker processes; "
            "define the task as a module-level function"
        )
    if "<locals>" in qualname:
        raise TypeError(
            f"parallel_map cannot send the locally-defined function "
            f"{qualname!r} to worker processes; move it to module level "
            "so it can be pickled"
        )


def effective_workers(workers: int | None = None,
                      n_tasks: int | None = None) -> int:
    """Resolve a worker count.

    ``REPRO_WORKERS`` supplies the default when ``workers`` is unset and
    caps an explicit request otherwise, so CI and laptops can bound pool
    width without code changes; an unparsable or non-positive value is
    ignored.  The result is always capped by the task count and at
    least 1.
    """
    env_cap: int | None
    try:
        env_cap = config.env_int_opt("REPRO_WORKERS")
    except ValueError:
        env_cap = None
    if env_cap is not None and env_cap <= 0:
        env_cap = None
    if workers is None or workers <= 0:
        workers = env_cap if env_cap is not None else (os.cpu_count() or 1)
    elif env_cap is not None:
        workers = min(workers, env_cap)
    if n_tasks is not None:
        workers = min(workers, max(n_tasks, 1))
    return max(workers, 1)


# -- worker side --------------------------------------------------------------

@dataclass
class _Attempt:
    """Outcome of one attempt at one task, as reported by the runner."""

    index: int
    ok: bool
    value: Any = None
    events: list | None = None      #: buffered obs events (process backend)
    duration: float = 0.0           #: runner-clock seconds
    kind: str = "exception"
    error_type: str = ""
    message: str = ""
    tb: str = ""
    exc: BaseException | None = None


class _ChunkRunner:
    """Runs one chunk ``[(index, item), ...]`` and reports per-item outcomes.

    Catching each item's exception here — instead of letting it abort
    the chunk — means one bad task never discards its chunk-mates'
    finished work.  :class:`WorkerCrashError` is the one exception
    re-raised: it *emulates* a dead worker, so the whole chunk must be
    charged, exactly as a real pool crash would charge it.
    """

    def __init__(self, fn: Callable, clock: Clock,
                 task: "obs.WorkerTask | None" = None,
                 seed: "tuple[str | None, int, obs.TraceContext | None] "
                       "| None" = None,
                 pickle_errors: bool = False,
                 shm: bool = False) -> None:
        self.fn = fn
        self.clock = clock
        self.task = task                    #: buffered tracing (process)
        self.seed = seed                    #: parent/depth/ctx seeds (thread)
        self.pickle_errors = pickle_errors  #: drop unpicklable exc objects
        self.shm = shm                      #: payload carries ArrayRefs

    def _run_one(self, item: Any) -> tuple[Any, list | None]:
        if self.task is not None:
            return self.task(item)
        return self.fn(item), None

    def __call__(self, payload: Sequence[tuple[int, Any]]) -> list[_Attempt]:
        if self.shm:
            return self._run_attached(payload)
        return self._dispatch(payload)

    def _dispatch(self, payload: Sequence[tuple[int, Any]]) -> list[_Attempt]:
        if self.seed is not None:
            return self._seeded(payload)
        return self._run(payload)

    def _run_attached(
            self, payload: Sequence[tuple[int, Any]]) -> list[_Attempt]:
        # Resolve ArrayRef descriptors to live shared-memory views, run
        # the chunk, then copy out any result still aliasing a segment:
        # the mappings close here, before the results pickle back.
        payload, atts = _shm.open_payload(payload)
        try:
            out = self._dispatch(payload)
            for attempt in out:
                attempt.value = atts.detach(attempt.value)
            return out
        finally:
            atts.close()

    def _seeded(self, payload: Sequence[tuple[int, Any]]) -> list[_Attempt]:
        # Thread workers start with an empty span stack; seed the
        # thread-local parent/depth (and trace context) so their spans
        # nest under the submitting ``parallel.map`` span in the shared
        # sinks and join its trace.
        tls = _obs_core._tls
        prev = (tls.base_parent, tls.base_depth, tls.base_ctx)
        tls.base_parent, tls.base_depth, tls.base_ctx = self.seed
        try:
            return self._run(payload)
        finally:
            tls.base_parent, tls.base_depth, tls.base_ctx = prev

    def _run(self, payload: Sequence[tuple[int, Any]]) -> list[_Attempt]:
        out: list[_Attempt] = []
        for index, item in payload:
            t0 = self.clock.now()
            try:
                value, events = self._run_one(item)
            except WorkerCrashError:
                raise
            except Exception as exc:
                out.append(_Attempt(
                    index=index, ok=False,
                    duration=self.clock.now() - t0,
                    kind="exception",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    tb=_traceback.format_exc(),
                    exc=self._portable(exc),
                ))
            else:
                out.append(_Attempt(
                    index=index, ok=True, value=value, events=events,
                    duration=self.clock.now() - t0,
                ))
        return out

    def _portable(self, exc: BaseException) -> BaseException | None:
        if not self.pickle_errors:
            return exc
        try:
            pickle.dumps(exc)
        except Exception:
            return None  # unpicklable: the caller gets type/message/tb
        return exc


# -- parent side --------------------------------------------------------------

class Executor:
    """Maps functions over sequences with retries, timeouts, and backends.

    Stateless between calls (each :meth:`map` builds and releases its own
    pool), so one executor can be shared freely.  Construction arguments
    override the process default policy
    (:func:`repro.parallel.policy.default_policy`) field by field.
    """

    def __init__(self, backend: str | None = None, *,
                 workers: int | None = None,
                 retries: int | None = None,
                 task_timeout: float | None = None,
                 policy: ExecutionPolicy | None = None,
                 clock: Clock | None = None,
                 shm: bool | None = None) -> None:
        base = policy if policy is not None else default_policy()
        self.policy = base.merged(backend=backend, retries=retries,
                                  task_timeout=task_timeout)
        self.workers = workers
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        #: Tri-state descriptor-transport switch: True/False force it,
        #: None defers to ``REPRO_SHM``.  Only the process backend can
        #: honour it — threads already share memory.
        self.shm = shm

    def map(self, fn: Callable[[T], R], args: Iterable[T], *,
            workers: int | None = None, chunksize: int = 1,
            on_failure: str = "raise",
            isolate: bool = False) -> "list[R] | MapResult":
        """Map ``fn`` over ``args``, preserving input order.

        ``on_failure="raise"`` (default) re-raises the first exhausted
        task's error; ``"collect"`` returns a :class:`MapResult` whose
        failed slots hold :class:`TaskFailure` records.

        ``isolate=True`` keeps even a one-task map on the configured
        backend instead of degrading to the inline serial path.  The
        serve daemon relies on this: each job is a single-item map that
        must run in a *disposable* worker process, so a crashing codec
        costs one attempt of one job — never the daemon.
        """
        items = list(args)
        if chunksize < 1:
            raise ValueError(f"chunksize must be positive, got {chunksize}")
        if on_failure not in ON_FAILURE:
            raise ValueError(
                f"on_failure must be one of {ON_FAILURE}, got {on_failure!r}")
        if workers is None:
            workers = self.workers
        n = effective_workers(workers, len(items))
        backend_name = self.policy.backend
        if not isolate and (n == 1 or len(items) <= 1):
            # Small maps degrade to the inline path: same semantics,
            # no pool overhead, closures allowed.
            backend_name = "serial"
        if backend_name == "process":
            _require_picklable_callable(fn)
        use_shm = (backend_name == "process"
                   and (_shm.shm_enabled() if self.shm is None
                        else self.shm))
        _TASKS.add(len(items))
        run = _MapRun(self, fn, items, n, chunksize, backend_name,
                      on_failure, use_shm=use_shm)
        result = run.execute()
        if backend_name == "serial" and items and hooks.active():
            first = result[0] if len(result) else None
            if not isinstance(first, TaskFailure) and not run.failures:
                # REPRO_SANITIZE: replay the first task and require
                # identical output, catching nondeterministic task
                # functions while the serial path keeps them observable.
                hooks.check_serial_replay(fn, items[0], first)
        return result


class _MapRun:
    """One :meth:`Executor.map` call's round-by-round state machine."""

    def __init__(self, executor: Executor, fn: Callable, items: list,
                 n_workers: int, chunksize: int, backend_name: str,
                 on_failure: str, use_shm: bool = False) -> None:
        self.policy = executor.policy
        self.clock = executor.clock
        self.fn = fn
        self.items = items
        self.n_workers = n_workers
        self.chunksize = chunksize
        self.backend_name = backend_name
        self.on_failure = on_failure
        #: Parent-owned shared-memory ledger; None on the pickle path.
        self.transport = _shm.ShmTransport() if use_shm else None
        self.results: list = [None] * len(items)
        self.attempts = [0] * len(items)
        self.failures: dict[int, TaskFailure] = {}
        self.pending: set[int] = set(range(len(items)))
        #: Set when the pool was killed or work abandoned mid-flight;
        #: close must then never wait on it.
        self.dirty = False

    # -- orchestration --------------------------------------------------------

    def execute(self) -> "list | MapResult":
        span_workers = 1 if self.backend_name == "serial" else self.n_workers
        with obs.span("parallel.map", tasks=len(self.items),
                      workers=span_workers) as sp:
            backend = make_backend(self.backend_name, self.n_workers)
            try:
                runner = self._make_runner(sp)
                first_round = True
                while self.pending:
                    if not first_round:
                        self._backoff()
                    first_round = False
                    self._run_round(backend, runner)
            finally:
                backend.close(kill=self.dirty)
                if self.transport is not None:
                    # Backstop: every settle path releases its own
                    # chunk, but an on_failure="raise" abort unwinds
                    # through here with segments still registered.
                    self.transport.release_all()
            if self.failures:
                sp.note(failures=len(self.failures))
        if self.on_failure == "collect":
            return MapResult(self.results, sorted(self.failures.values(),
                                                  key=lambda f: f.index))
        return list(self.results)

    def _make_runner(self, sp: "obs.span") -> _ChunkRunner:
        if self.backend_name == "process":
            task = None
            if obs.active():
                # mem is resolved here, parent-side: a profiling_memory()
                # override active in the parent turns on tracemalloc in
                # every worker too.
                task = obs.WorkerTask(self.fn, parent=sp.name,
                                      depth=obs.current_depth(),
                                      mem=obs.mem_active())
            # The runner crosses a pickle boundary, so it always carries
            # the (stateless) system clock; the injected clock stays
            # parent-side, where it drives backoff.  Virtual-clock
            # timeouts are therefore a serial-backend-only feature.
            return _ChunkRunner(self.fn, SYSTEM_CLOCK, task=task,
                                pickle_errors=True,
                                shm=self.transport is not None)
        seed = None
        if self.backend_name == "thread" and obs.active():
            ctx = (obs.current_context() if obs.propagate_active()
                   else None)
            seed = (sp.name, obs.current_depth(), ctx)
        return _ChunkRunner(self.fn, self.clock, seed=seed)

    def _backoff(self) -> None:
        delay = max(self.policy.backoff_delay(self.attempts[i])
                    for i in self.pending)
        if delay > 0:
            with obs.span("parallel.retry", tasks=len(self.pending),
                          delay=delay):
                self.clock.sleep(delay)

    def _run_round(self, backend: Backend, runner: _ChunkRunner) -> None:
        order = sorted(self.pending)
        queue = [order[i:i + self.chunksize]
                 for i in range(0, len(order), self.chunksize)]
        queue.reverse()  # pop() serves chunks in ascending index order
        timeout = self.policy.task_timeout
        inflight: dict = {}  # future -> (chunk, deadline)
        aborted = False
        while True:
            while queue and not aborted and len(inflight) < self.n_workers:
                chunk = queue.pop()
                payload = [(i, self.items[i]) for i in chunk]
                if self.transport is not None:
                    payload = self.transport.encode(tuple(chunk), payload)
                try:
                    fut = backend.submit(runner, payload)
                except BrokenExecutor as exc:
                    self._release_segments(chunk)
                    self._charge_chunk(chunk, "crash", exc)
                    self._recover_crash(backend, inflight)
                    aborted = True
                    break
                deadline = None
                if timeout is not None and backend.name != "serial":
                    deadline = SYSTEM_CLOCK.now() + timeout * len(chunk)
                inflight[fut] = (chunk, deadline)
            if not inflight:
                return
            if not self._drain(backend, inflight, timeout):
                aborted = True

    def _drain(self, backend: Backend, inflight: dict,
               timeout: float | None) -> bool:
        """Wait for one completion or expiry; False aborts the round."""
        wait_for = None
        deadlines = [d for _, d in inflight.values() if d is not None]
        if deadlines:
            wait_for = max(0.0, min(deadlines) - SYSTEM_CLOCK.now())
        done, _ = _wait(set(inflight), timeout=wait_for,
                        return_when=FIRST_COMPLETED)
        if done:
            # Fold clean completions before any crash-bearing future:
            # a pool crash charges everything still in flight, and a
            # chunk that already finished must not be among the victims.
            for fut in sorted(done, key=lambda f: f.exception() is not None):
                chunk, _ = inflight.pop(fut)
                # The worker detached its results before returning, so
                # the chunk's segments die with its future — win or lose.
                self._release_segments(chunk)
                if not self._fold_future(fut, chunk, backend, inflight):
                    return False
            return True
        return self._expire(backend, inflight)

    def _release_segments(self, chunk: list[int]) -> None:
        if self.transport is not None:
            self.transport.release(tuple(chunk))

    def _fold_future(self, fut, chunk: list[int], backend: Backend,
                     inflight: dict) -> bool:
        exc = fut.exception()
        if exc is None:
            for attempt in fut.result():
                self._fold_attempt(attempt)
            return True
        if isinstance(exc, BrokenExecutor):
            # The pool itself died: the culprit is unknowable, so every
            # in-flight chunk is charged one crash attempt (innocents
            # succeed on retry) and the pool is rebuilt.
            self._charge_chunk(chunk, "crash", exc)
            self._recover_crash(backend, inflight)
            return False
        if isinstance(exc, WorkerCrashError):
            # Emulated crash (serial/thread backends, or raised through
            # a healthy process pool): charge just this chunk.
            self._charge_chunk(chunk, "crash", exc)
            return True
        # Infrastructure failure outside the runner's own capture (e.g.
        # an unpicklable chunk result): charge the chunk as exceptions.
        self._charge_chunk(chunk, "exception", exc)
        return True

    def _expire(self, backend: Backend, inflight: dict) -> bool:
        now = SYSTEM_CLOCK.now()
        expired = [fut for fut, (_, d) in inflight.items()
                   if d is not None and now >= d]
        if not expired:
            return True  # spurious wakeup; keep draining
        for fut in expired:
            chunk, _ = inflight.pop(fut)
            fut.cancel()
            self._release_segments(chunk)
            self._charge_chunk(chunk, "timeout", None)
        self.dirty = True
        if backend.kills_on_timeout:
            # Kill and rebuild the pool; other in-flight chunks are
            # victims — uncharged, still pending, re-run next round
            # (with freshly encoded segments, hence the release here).
            for chunk, _ in inflight.values():
                self._release_segments(chunk)
            inflight.clear()
            backend.recycle(kill=True)
            return False
        return True

    def _recover_crash(self, backend: Backend, inflight: dict) -> None:
        for chunk, _ in inflight.values():
            self._release_segments(chunk)
            self._charge_chunk(chunk, "crash", None)
        inflight.clear()
        self.dirty = True
        backend.recycle(kill=True)

    # -- outcome folding ------------------------------------------------------

    def _fold_attempt(self, attempt: _Attempt) -> None:
        timeout = self.policy.task_timeout
        if (attempt.ok and timeout is not None
                and self.backend_name == "serial"
                and attempt.duration > timeout):
            # Serial has no preemption: an overrun is detected after the
            # fact and its result discarded for parity with the killing
            # backends.
            self._charge_one(attempt.index, "timeout", None,
                             duration=attempt.duration)
            return
        if attempt.ok:
            if attempt.index in self.pending:
                self.results[attempt.index] = attempt.value
                self.pending.discard(attempt.index)
                _TASK_H.observe(attempt.duration,
                                backend=self.backend_name)
                if attempt.events:
                    obs.merge_events(attempt.events)
            return
        self._charge_one(attempt.index, attempt.kind, attempt.exc,
                         error_type=attempt.error_type,
                         message=attempt.message, tb=attempt.tb)

    def _charge_chunk(self, chunk: list[int], kind: str,
                      exc: BaseException | None) -> None:
        for index in chunk:
            self._charge_one(index, kind, exc)

    def _charge_one(self, index: int, kind: str, exc: BaseException | None,
                    *, error_type: str = "", message: str = "",
                    tb: str = "", duration: float | None = None) -> None:
        if index not in self.pending:
            return
        self.attempts[index] += 1
        if self.attempts[index] <= self.policy.retries:
            _RETRIES.add(1)
            return
        if not error_type:
            if exc is not None:
                error_type, message = type(exc).__name__, str(exc)
            elif kind == "timeout":
                error_type = "Timeout"
                budget = self.policy.task_timeout
                took = (f" after {duration:.3f}s"
                        if duration is not None else "")
                message = f"exceeded task_timeout={budget}s{took}"
            else:
                error_type = "WorkerCrash"
                message = "worker died before returning a result"
        failure = TaskFailure(
            index=index, kind=kind, error_type=error_type,
            message=message, attempts=self.attempts[index],
            traceback=tb, exc=exc,
        )
        self.failures[index] = failure
        self.results[index] = failure
        self.pending.discard(index)
        _FAILURES.add(1)
        if self.on_failure == "raise":
            self.dirty = True
            raise failure.as_error()


def parallel_map(
    fn: Callable[[T], R],
    args: Iterable[T],
    workers: int | None = None,
    chunksize: int = 1,
    *,
    backend: str | None = None,
    retries: int | None = None,
    task_timeout: float | None = None,
    on_failure: str = "raise",
    clock: Clock | None = None,
) -> "list[R] | MapResult":
    """Map ``fn`` over ``args`` with fault tolerance, preserving order.

    The long-standing entry point, now executor-backed: with no keyword
    overrides it follows the process default policy
    (``REPRO_BACKEND`` / ``REPRO_RETRIES`` / ``REPRO_TASK_TIMEOUT`` or
    :func:`repro.parallel.configure`), which preserves the historical
    behaviour — process pool, no retries, failures re-raised.  On the
    process backend ``fn`` and each argument must be picklable;
    ``chunksize > 1`` batches tasks per IPC round trip, which pays off
    when individual tasks are sub-millisecond.
    """
    ex = Executor(backend=backend, retries=retries,
                  task_timeout=task_timeout, clock=clock)
    return ex.map(fn, args, workers=workers, chunksize=chunksize,
                  on_failure=on_failure)
