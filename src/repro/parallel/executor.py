"""Process-pool map with deterministic ordering.

``parallel_map(fn, args)`` behaves like ``list(map(fn, args))`` but fans
the calls out over worker processes.  Results always come back in input
order; worker exceptions propagate to the caller.  With ``workers <= 1``
(or a single task) it degrades to a plain loop, which keeps the same code
path debuggable and avoids pool overhead for small runs.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["parallel_map", "effective_workers"]

T = TypeVar("T")
R = TypeVar("R")


def effective_workers(workers: int | None = None,
                      n_tasks: int | None = None) -> int:
    """Resolve a worker count: default CPU count, capped by task count."""
    if workers is None or workers <= 0:
        workers = os.cpu_count() or 1
    if n_tasks is not None:
        workers = min(workers, max(n_tasks, 1))
    return max(workers, 1)


def parallel_map(
    fn: Callable[[T], R],
    args: Iterable[T],
    workers: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """Map ``fn`` over ``args`` across processes, preserving order.

    ``fn`` and each argument must be picklable (module-level functions and
    plain data).  ``chunksize > 1`` batches tasks per IPC round trip,
    which pays off when individual tasks are sub-millisecond.
    """
    items: Sequence[T] = list(args)
    if chunksize < 1:
        raise ValueError(f"chunksize must be positive, got {chunksize}")
    n = effective_workers(workers, len(items))
    if n == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=n) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))
