"""Global configuration for the repro library.

Resolution, ensemble size, and parallelism are configurable so the same
code paths run at laptop scale (tests), bench scale (default benchmarks),
or paper scale (``ne=30``, 101 members, 170 variables).

Environment knobs
-----------------
``REPRO_NE``
    Spectral-element resolution parameter (paper: 30).  The number of
    horizontal grid points is ``6*ne**2*(np-1)**2 + 2`` with ``np = 4``.
``REPRO_NLEV``
    Number of vertical levels (paper: 30).
``REPRO_MEMBERS``
    Ensemble size (paper: 101).
``REPRO_2D`` / ``REPRO_3D``
    Number of 2-D/3-D catalog variables for :func:`example_scale` (the
    examples' configs), so ``tests/test_examples.py`` can shrink the
    scripts without editing them.
``REPRO_WORKERS``
    Worker processes used by :mod:`repro.parallel` (default: CPU count).
``REPRO_SANITIZE``
    Set to ``1`` to activate the runtime numeric sanitizer
    (:mod:`repro.check.sanitize`): codec round trips, the PVT z-score and
    E_nmax paths, and ``parallel_map`` then verify dtype/shape/NaN
    invariants on every call and raise ``SanitizerError`` on violation.
``REPRO_TRACE``
    Set to ``1`` to activate the observability layer (:mod:`repro.obs`):
    codec, PVT, parallel, and harness stages then record hierarchical
    wall-clock spans and counters, rendered by ``repro stats``.
``REPRO_TRACE_JSONL`` / ``REPRO_TRACE_CHROME``
    Optional trace output paths: a JSON-lines event stream and a
    Chrome-trace/Perfetto file (see ``docs/observability.md``).
``REPRO_STORE``
    Artifact-cache directory for :mod:`repro.store`.  When set, the
    expensive stages (ensemble run, PVT verdicts, hybrid plans, table
    rows) are cached content-addressed on disk and reruns only
    recompute stages whose inputs changed; unset (the default)
    disables caching entirely.  See ``docs/caching.md``.
``REPRO_STORE_MAX_MB``
    LRU size cap for the ``REPRO_STORE`` cache (least recently used
    artifacts are evicted above it); unset means unbounded.
``REPRO_SERVE_*``
    Verification-daemon knobs (:mod:`repro.serve`, see
    ``docs/serving.md``): ``REPRO_SERVE_HOST`` / ``REPRO_SERVE_PORT`` /
    ``REPRO_SERVE_SOCKET`` pick the listening address,
    ``REPRO_SERVE_WORKERS`` the jobs in flight, ``REPRO_SERVE_QUEUE``
    the pending-job depth before ``busy`` rejections,
    ``REPRO_SERVE_RETRY_AFTER`` the retry hint those rejections carry,
    and ``REPRO_SERVE_MAX_FRAME`` the per-frame protocol payload
    ceiling in bytes.
``REPRO_SHM`` / ``REPRO_SHM_MIN_BYTES``
    Shared-memory array transport for process-backend maps
    (:mod:`repro.parallel.shm`, see ``docs/streaming.md``): the flag
    turns the descriptor transport on by default, the byte threshold
    (default 64 KiB) keeps small arrays on the pickle path.
``REPRO_STREAM_CHUNK_MB``
    Process-wide chunk size for the streaming pipeline
    (:mod:`repro.stream`, default 8 MiB).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

__all__ = [
    "FILL_VALUE",
    "SPECIAL_THRESHOLD",
    "ReproConfig",
    "env_flag",
    "env_float_opt",
    "env_int_opt",
    "env_str",
    "get_config",
    "set_config",
    "paper_scale",
    "bench_scale",
    "test_scale",
    "example_scale",
]

#: Fill value used by CESM/POP2 for undefined points (e.g. sea-surface
#: temperature over land), see paper Section 3.1.
FILL_VALUE = 1.0e35

#: Magnitudes at or above this are treated as special/missing values
#: everywhere (metrics, codecs, sanitizer); the paper excludes such points
#: from every statistic.  Exactly one definition exists — the REP007 lint
#: rule rejects re-spelled copies.
SPECIAL_THRESHOLD = 1.0e34

#: Acceptance threshold for the Pearson correlation coefficient between
#: original and reconstructed data (paper Section 4.2, APAX profiler
#: recommendation).
RHO_THRESHOLD = 0.99999

#: Maximum allowed |RMSZ_orig - RMSZ_recon| (paper eq. 8).
RMSZ_DIFF_LIMIT = 0.1

#: Maximum allowed e_nmax / range(E_nmax distribution) (paper eq. 11).
ENMAX_RATIO_LIMIT = 0.1

#: Maximum allowed |s_ideal - s_worst_case| for the bias slope based on the
#: 95% confidence region (paper eq. 9).
BIAS_SLOPE_LIMIT = 0.05


# -- environment accessors ----------------------------------------------------
#
# Every REPRO_* read in the library goes through these functions, so
# config is the single module that touches ``os.environ``.  That makes
# the knob surface auditable in one place and lets the whole-program
# analyzer (repro.check.flow, rule REP015) treat environment reads
# below this seam as configuration rather than as a nondeterministic
# source leaking into cached computations.


def env_str(name: str, default: str = "") -> str:
    """The raw string value of the ``name`` knob (``default`` if unset)."""
    return os.environ.get(name, default)


def env_flag(name: str) -> bool:
    """Tri-state knob collapsed to a bool: unset/``""``/``"0"`` is off."""
    return os.environ.get(name, "") not in ("", "0")


def env_int_opt(name: str) -> int | None:
    """Optional integer knob; unset or blank means ``None``.

    Raises :class:`ValueError` naming the knob on a non-integer value,
    so a typo'd setting fails loudly instead of being silently dropped.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(f"{name}={raw!r} is not an integer") from exc


def env_float_opt(name: str) -> float | None:
    """Optional float knob; unset or blank means ``None``.

    Raises :class:`ValueError` naming the knob on a non-numeric value.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError as exc:
        raise ValueError(f"{name}={raw!r} is not a number") from exc


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from exc
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


@dataclass(frozen=True)
class ReproConfig:
    """Immutable bundle of run-scale parameters.

    Parameters mirror the paper's experimental setup (Section 5.1): a
    spectral-element CAM grid at ``ne = 30`` (48,602 horizontal points),
    30 vertical levels, 101 ensemble members, and 170 CAM variables
    (83 two-dimensional + 87 three-dimensional).
    """

    ne: int = 30
    nlev: int = 30
    n_members: int = 101
    n_2d: int = 83
    n_3d: int = 87
    base_seed: int = 20140623  # HPDC'14 started June 23, 2014
    workers: int = field(default_factory=lambda: os.cpu_count() or 1)

    def __post_init__(self) -> None:
        for name in ("ne", "nlev", "n_members", "n_2d", "n_3d", "workers"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.n_members < 3:
            raise ValueError("n_members must be at least 3 (PVT draws 3 members)")

    @property
    def n_variables(self) -> int:
        """Total variable count (paper: 170)."""
        return self.n_2d + self.n_3d

    @property
    def ncol(self) -> int:
        """Number of horizontal grid points for the cubed-sphere grid."""
        from repro.grid.cubed_sphere import ncol_for_ne

        return ncol_for_ne(self.ne)

    def with_scale(self, *, ne: int | None = None, nlev: int | None = None,
                   n_members: int | None = None) -> "ReproConfig":
        """Return a copy with the given scale parameters replaced."""
        kwargs = {}
        if ne is not None:
            kwargs["ne"] = ne
        if nlev is not None:
            kwargs["nlev"] = nlev
        if n_members is not None:
            kwargs["n_members"] = n_members
        return replace(self, **kwargs)


def paper_scale() -> ReproConfig:
    """The paper's full experimental scale (ne=30, 30 levels, 101 members)."""
    return ReproConfig()


def bench_scale() -> ReproConfig:
    """Default benchmark scale: honours env knobs.

    The defaults (ne=6, 8 levels, 101 members, all 170 variables) keep a
    full single-core benchmark run tractable; raise ``REPRO_NE`` /
    ``REPRO_NLEV`` toward the paper's 30/30 on bigger machines.
    """
    return ReproConfig(
        ne=_env_int("REPRO_NE", 6),
        nlev=_env_int("REPRO_NLEV", 8),
        n_members=_env_int("REPRO_MEMBERS", 101),
        workers=_env_int("REPRO_WORKERS", os.cpu_count() or 1),
    )


def example_scale(*, ne: int, nlev: int, n_members: int, n_2d: int,
                  n_3d: int) -> ReproConfig:
    """A demo scale with env overrides: used by the ``examples/`` scripts.

    Each example passes its own readable defaults; the ``REPRO_NE`` /
    ``REPRO_NLEV`` / ``REPRO_MEMBERS`` / ``REPRO_2D`` / ``REPRO_3D``
    knobs shrink (or grow) them without editing the script — which is
    how the test suite runs every example on a tiny grid.
    """
    return ReproConfig(
        ne=_env_int("REPRO_NE", ne),
        nlev=_env_int("REPRO_NLEV", nlev),
        n_members=_env_int("REPRO_MEMBERS", n_members),
        n_2d=_env_int("REPRO_2D", n_2d),
        n_3d=_env_int("REPRO_3D", n_3d),
        workers=_env_int("REPRO_WORKERS", os.cpu_count() or 1),
    )


def test_scale() -> ReproConfig:
    """Small scale used by the test suite (ne=3, 5 levels, 21 members)."""
    return ReproConfig(ne=3, nlev=5, n_members=21, n_2d=6, n_3d=6)


_config: ReproConfig | None = None


def get_config() -> ReproConfig:
    """Return the process-wide configuration (bench scale by default)."""
    global _config
    if _config is None:
        _config = bench_scale()
    return _config


def set_config(config: ReproConfig) -> None:
    """Install ``config`` as the process-wide configuration."""
    global _config
    if not isinstance(config, ReproConfig):
        raise TypeError(f"expected ReproConfig, got {type(config).__name__}")
    _config = config
