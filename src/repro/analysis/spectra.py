"""Zonal wavenumber spectra.

A compression-noise diagnostic from the visualization/analysis toolbox
(NCAR's later ``ldcpy`` ships one): project the field onto a regular
lat/lon raster, FFT each latitude row, and average the power over a
latitude band.  Lossy compression shows up as a *noise floor* at high
wavenumbers — energy where the original spectrum has already decayed —
long before any pointwise metric looks alarming.
"""

from __future__ import annotations

import numpy as np

from repro.grid.cubed_sphere import CubedSphereGrid
from repro.metrics.ssim import rasterize

__all__ = ["zonal_power_spectrum", "spectral_noise_floor_ratio"]


def zonal_power_spectrum(
    grid: CubedSphereGrid,
    field: np.ndarray,
    nlat: int = 32,
    nlon: int = 64,
    lat_band: tuple[float, float] = (-60.0, 60.0),
) -> tuple[np.ndarray, np.ndarray]:
    """Mean zonal power spectrum over a latitude band.

    Returns ``(wavenumbers, power)`` with wavenumbers ``0..nlon//2``.
    ``field`` is a horizontal slice ``(ncol,)``.
    """
    if lat_band[0] >= lat_band[1]:
        raise ValueError(f"empty latitude band {lat_band}")
    img = rasterize(grid, np.asarray(field, dtype=np.float64), nlat, nlon)
    centers = np.linspace(-90.0, 90.0, nlat, endpoint=False) + 90.0 / nlat
    rows = img[(centers >= lat_band[0]) & (centers <= lat_band[1])]
    if rows.size == 0:
        raise ValueError(f"no raster rows inside latitude band {lat_band}")
    coeffs = np.fft.rfft(rows, axis=1)
    power = (np.abs(coeffs) ** 2).mean(axis=0) / nlon**2
    wavenumbers = np.arange(power.size)
    return wavenumbers, power


def spectral_noise_floor_ratio(
    grid: CubedSphereGrid,
    original: np.ndarray,
    reconstructed: np.ndarray,
    nlat: int = 32,
    nlon: int = 64,
    tail_fraction: float = 0.25,
) -> float:
    """High-wavenumber energy ratio: reconstructed over original.

    Averages the top ``tail_fraction`` of the zonal spectrum; 1.0 means
    the compression left the small scales untouched, >> 1 means it
    injected a noise floor (or << 1: it smoothed the small scales away).
    """
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError(f"tail_fraction must be in (0, 1], got "
                         f"{tail_fraction}")
    _, p_orig = zonal_power_spectrum(grid, original, nlat, nlon)
    _, p_rec = zonal_power_spectrum(grid, reconstructed, nlat, nlon)
    k0 = int(len(p_orig) * (1.0 - tail_fraction))
    k0 = min(max(k0, 1), len(p_orig) - 1)
    tail_orig = float(p_orig[k0:].mean())
    tail_rec = float(p_rec[k0:].mean())
    if tail_orig == 0.0:
        return 1.0 if tail_rec == 0.0 else float("inf")
    return tail_rec / tail_orig
