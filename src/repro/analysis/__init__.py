"""Post-processing analysis substrate.

The paper's acceptance bar is operational: "if the reconstructed and the
original climate simulation data are indistinguishable during the
post-processing analysis, which includes both visualization and analytics,
then ... applying compression is certainly a reasonable thing to do"
(Section 1).  This package implements the standard analytics that
post-processing performs on history files — zonal means, vertical
profiles, area-weighted global diagnostics, anomalies — plus
:func:`compare`, a one-call original-vs-reconstructed diagnostic bundle
(in the spirit of NCAR's later ``ldcpy`` package, which grew out of this
line of work).
"""

from repro.analysis.climatology import (
    zonal_mean,
    meridional_profile,
    vertical_profile,
    anomaly,
)
from repro.analysis.compare import ComparisonReport, compare
from repro.analysis.spectra import (
    zonal_power_spectrum,
    spectral_noise_floor_ratio,
)

__all__ = [
    "zonal_mean",
    "meridional_profile",
    "vertical_profile",
    "anomaly",
    "ComparisonReport",
    "compare",
    "zonal_power_spectrum",
    "spectral_noise_floor_ratio",
]
