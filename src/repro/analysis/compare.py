"""One-call original-vs-reconstructed diagnostics.

:func:`compare` bundles every Section 4 metric plus the Section 6
extensions into a single report — the "did compression change my
analysis?" answer a scientist wants before adopting a codec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import RHO_THRESHOLD
from repro.grid.cubed_sphere import CubedSphereGrid
from repro.metrics.average import nrmse, psnr, rmse, signal_to_residual_ratio
from repro.metrics.characterize import characterize
from repro.metrics.correlation import pearson
from repro.metrics.pointwise import max_pointwise_error, normalized_max_error
from repro.analysis.climatology import zonal_mean

__all__ = ["ComparisonReport", "compare"]


@dataclass(frozen=True)
class ComparisonReport:
    """Every comparison metric between an original field and its
    reconstruction, plus analysis-level deltas."""

    variable: str
    max_error: float
    e_nmax: float
    rmse: float
    nrmse: float
    psnr_db: float
    srr_db: float
    rho: float
    global_mean_shift: float | None
    max_zonal_mean_shift: float | None
    detail: dict = field(default_factory=dict, compare=False)

    @property
    def passes_correlation(self) -> bool:
        """Whether rho clears the paper's 0.99999 acceptance bar."""
        return self.rho >= RHO_THRESHOLD

    def as_rows(self) -> list[list]:
        """Rows for :func:`repro.harness.report.render_table`."""
        rows = [
            ["max pointwise error", self.max_error],
            ["e_nmax (eq. 2)", self.e_nmax],
            ["RMSE (eq. 3)", self.rmse],
            ["NRMSE (eq. 4)", self.nrmse],
            ["PSNR (dB)", self.psnr_db],
            ["SRR (dB)", self.srr_db],
            ["Pearson rho (eq. 5)", self.rho],
        ]
        if self.global_mean_shift is not None:
            rows.append(["global-mean shift (sigmas)",
                         self.global_mean_shift])
        if self.max_zonal_mean_shift is not None:
            rows.append(["max zonal-mean shift", self.max_zonal_mean_shift])
        return rows


def compare(
    original: np.ndarray,
    reconstructed: np.ndarray,
    grid: CubedSphereGrid | None = None,
    variable: str = "?",
    n_bands: int = 24,
) -> ComparisonReport:
    """Compute the full diagnostic bundle.

    With a ``grid``, analysis-level diagnostics (global mean, zonal means)
    are included; without one, only pointwise/statistical metrics.
    """
    original = np.asarray(original)
    reconstructed = np.asarray(reconstructed)
    if original.shape != reconstructed.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {reconstructed.shape}"
        )

    gshift = None
    zshift = None
    detail: dict = {"characteristics": characterize(original,
                                                    with_lossless_cr=False)}
    if grid is not None:
        from repro.pvt.budget import global_mean_shift

        gshift = global_mean_shift(grid, original, reconstructed)
        zm_orig = zonal_mean(grid, original.astype(np.float64), n_bands)
        zm_rec = zonal_mean(grid, reconstructed.astype(np.float64), n_bands)
        both = np.isfinite(zm_orig) & np.isfinite(zm_rec)
        zshift = (
            float(np.abs(zm_orig - zm_rec)[both].max()) if both.any()
            else 0.0
        )
        detail["zonal_mean_original"] = zm_orig
        detail["zonal_mean_reconstructed"] = zm_rec

    return ComparisonReport(
        variable=variable,
        max_error=max_pointwise_error(original, reconstructed),
        e_nmax=normalized_max_error(original, reconstructed),
        rmse=rmse(original, reconstructed),
        nrmse=nrmse(original, reconstructed),
        psnr_db=psnr(original, reconstructed),
        srr_db=signal_to_residual_ratio(original, reconstructed),
        rho=pearson(original, reconstructed),
        global_mean_shift=gshift,
        max_zonal_mean_shift=zshift,
        detail=detail,
    )
