"""Climatological reductions on unstructured cubed-sphere fields.

These are the reductions a climate scientist runs on history files before
looking at anything else; the verification question is always whether they
change when the underlying data has been through lossy compression.

All reductions are area-weighted, exclude CESM fill values, and accept
either horizontal fields ``(ncol,)`` or 3-D fields ``(nlev, ncol)``.
"""

from __future__ import annotations

import numpy as np

from repro.grid.cubed_sphere import CubedSphereGrid
from repro.metrics.characterize import valid_mask

__all__ = ["zonal_mean", "meridional_profile", "vertical_profile",
           "anomaly", "latitude_band_edges"]


def latitude_band_edges(n_bands: int) -> np.ndarray:
    """Equal-width latitude band edges from -90 to 90 degrees."""
    if n_bands < 1:
        raise ValueError(f"n_bands must be positive, got {n_bands}")
    return np.linspace(-90.0, 90.0, n_bands + 1)


def _band_index(grid: CubedSphereGrid, n_bands: int) -> np.ndarray:
    edges = latitude_band_edges(n_bands)
    idx = np.digitize(grid.lat, edges[1:-1])
    return idx


def zonal_mean(
    grid: CubedSphereGrid, field: np.ndarray, n_bands: int = 24
) -> np.ndarray:
    """Area-weighted mean per latitude band.

    Returns ``(n_bands,)`` for a horizontal field or ``(nlev, n_bands)``
    for a 3-D field; bands with no valid points come back NaN.
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim == 1:
        field = field[None, :]
        squeeze = True
    elif field.ndim == 2:
        squeeze = False
    else:
        raise ValueError(f"expected (ncol,) or (nlev, ncol), got {field.shape}")
    if field.shape[-1] != grid.ncol:
        raise ValueError(
            f"field has {field.shape[-1]} columns, grid has {grid.ncol}"
        )

    idx = _band_index(grid, n_bands)
    out = np.full((field.shape[0], n_bands), np.nan)
    for lev in range(field.shape[0]):
        ok = valid_mask(field[lev])
        w = np.where(ok, grid.area, 0.0)
        num = np.bincount(idx, weights=w * np.where(ok, field[lev], 0.0),
                          minlength=n_bands)
        den = np.bincount(idx, weights=w, minlength=n_bands)
        nz = den > 0
        out[lev, nz] = num[nz] / den[nz]
    return out[0] if squeeze else out


def meridional_profile(
    grid: CubedSphereGrid, field: np.ndarray, n_bands: int = 24
) -> tuple[np.ndarray, np.ndarray]:
    """Band-center latitudes and the corresponding zonal means."""
    edges = latitude_band_edges(n_bands)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, zonal_mean(grid, field, n_bands)


def vertical_profile(grid: CubedSphereGrid, field: np.ndarray) -> np.ndarray:
    """Area-weighted global mean per level of a 3-D field."""
    field = np.asarray(field, dtype=np.float64)
    if field.ndim != 2 or field.shape[-1] != grid.ncol:
        raise ValueError(
            f"expected (nlev, {grid.ncol}) field, got {field.shape}"
        )
    out = np.empty(field.shape[0])
    for lev in range(field.shape[0]):
        mask = ~valid_mask(field[lev])
        out[lev] = grid.global_mean(
            np.where(mask, 0.0, field[lev]), mask=mask
        )
    return out


def anomaly(field: np.ndarray, climatology: np.ndarray) -> np.ndarray:
    """Field minus climatology, with fill values propagated."""
    field = np.asarray(field, dtype=np.float64)
    climatology = np.asarray(climatology, dtype=np.float64)
    if field.shape != climatology.shape:
        raise ValueError(
            f"shape mismatch: {field.shape} vs {climatology.shape}"
        )
    ok = valid_mask(field) & valid_mask(climatology)
    out = np.where(ok, field - climatology, np.nan)
    return out
