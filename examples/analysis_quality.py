#!/usr/bin/env python
"""Beyond the paper: the Section 6 'future work' metrics, implemented.

The paper closes with three planned extensions, all built here:

- **global energy budget**: the impact of compression on the top-of-model
  net radiation FSNT - FLNT;
- **field gradients**: derived quantities amplify compression noise;
- **SSIM**: do reconstructed fields still produce quality images for the
  visualization half of post-processing?

Plus the APAX profiler (Section 3.2.4), which recommends the encoding
rate meeting the rho >= 0.99999 bar.

Run:  python examples/analysis_quality.py
"""

import numpy as np

from repro.compressors import ApaxProfiler, get_variant
from repro.config import example_scale
from repro.harness.report import render_table
from repro.metrics.gradient import gradient_impact
from repro.metrics.ssim import rasterize, ssim
from repro.model import CAMEnsemble
from repro.pvt.budget import energy_budget_residual, global_mean_shift


def main() -> None:
    config = example_scale(ne=6, nlev=8, n_members=5, n_2d=10, n_3d=10)
    ensemble = CAMEnsemble(config)
    grid = ensemble.model.grid

    fsnt = ensemble.member_field("FSNT", 0)
    flnt = ensemble.member_field("FLNT", 0)
    fsdsc = ensemble.member_field("FSDSC", 0)

    rows = []
    for variant in ("APAX-2", "APAX-4", "APAX-5", "fpzip-24", "fpzip-16",
                    "ISA-1.0", "GRIB2"):
        codec = get_variant(variant)
        r_fsnt = codec.decompress(codec.compress(fsnt))
        r_flnt = codec.decompress(codec.compress(flnt))
        r_fsdsc = codec.decompress(codec.compress(fsdsc))

        budget = energy_budget_residual(grid, fsnt, flnt, r_fsnt, r_flnt)
        image_a = rasterize(grid, fsdsc.astype(np.float64), 32, 64)
        image_b = rasterize(grid, r_fsdsc.astype(np.float64), 32, 64)
        rows.append([
            variant,
            budget["budget_shift"],
            global_mean_shift(grid, fsdsc, r_fsdsc),
            gradient_impact(grid, fsdsc, r_fsdsc),
            ssim(image_a, image_b),
        ])
    print(render_table(
        ["method", "budget shift (W/m2)", "gmean shift (sigmas)",
         "gradient impact", "SSIM"],
        rows,
        title="Analysis-quality metrics (paper Section 6 future work)",
    ))
    print(
        "\nReading the table: the budget shift must stay << 1 W/m2 (the "
        "signal climate\nscientists argue about); gradient impact ~1 means "
        "derivatives are pure noise;\nSSIM ~1 means visualizations are "
        "indistinguishable."
    )

    print("\nSpectral noise floor (tail-energy ratio, 1.0 = untouched):")
    from repro.analysis.spectra import spectral_noise_floor_ratio

    for variant in ("fpzip-24", "APAX-4", "APAX-5", "fpzip-8"):
        codec = get_variant(variant)
        r = spectral_noise_floor_ratio(
            grid, fsdsc, codec.decompress(codec.compress(fsdsc))
        )
        print(f"  {variant:9s} {r:10.3f}")

    print("\nAPAX profiler (Section 3.2.4): sweeping rates on FSDSC ...")
    profiler = ApaxProfiler()
    for row in profiler.profile(fsdsc):
        print(f"  rate {row['rate']:.0f}: CR={row['cr']:.3f} "
              f"rho={row['rho']:.7f} nrmse={row['nrmse']:.2e}")
    rate = profiler.recommend(fsdsc)
    print(f"  => recommended encoding rate: {rate:.0f}:1")


if __name__ == "__main__":
    main()
