#!/usr/bin/env python
"""The CESM-PVT's original job: port verification.

Before the paper repurposed it for compression, the PVT answered: "we
ported the model to a new machine and the results are no longer
bit-for-bit — did we change the climate?"  (Section 4.3.)

This example builds the trusted-machine ensemble, then plays two 'new
machines':

- a benign port: the same model with a different O(1e-14) perturbation
  stream (bit-level differences only) — must PASS;
- a buggy port: the same model with a biased surface field (a sign error
  in some increment, say) — must FAIL the global-mean range-shift check.

Run:  python examples/port_verification.py
"""

import numpy as np

from repro.config import example_scale
from repro.model import CAMEnsemble
from repro.pvt import CesmPvt


def main() -> None:
    config = example_scale(ne=5, nlev=8, n_members=41, n_2d=8, n_3d=8)
    print(f"Trusted machine: running the {config.n_members}-member "
          "ensemble ...")
    trusted = CAMEnsemble(config)
    pvt = CesmPvt(trusted)

    # "New machine": same climate, different bit-level perturbations.
    # Three runs is generally sufficient (Section 4.3).
    print("New machine: running 3 verification members ...")
    ported = CAMEnsemble(config, perturbation=3.0e-14)
    new_runs = {
        name: ported.ensemble_field(name)[:3]
        for name in ("U", "FSDSC", "T", "PS")
    }

    verdicts = pvt.verify_port(new_runs)
    print("\nBenign port verdicts (expected: all PASS):")
    for name, v in verdicts.items():
        lo, hi = v.detail["ensemble_mean_range"]
        print(f"  {name:6s} global-mean ok={v.global_mean_ok} "
              f"(range [{lo:.4g}, {hi:.4g}], "
              f"new={np.round(v.detail['new_means'], 4).tolist()}) "
              f"rmsz ok={v.rmsz_ok} -> "
              f"{'PASS' if v.passed else 'FAIL'}")
    assert all(v.passed for v in verdicts.values())

    # "Buggy port": a biased temperature field.
    print("\nBuggy port: biasing T by +0.5 K everywhere ...")
    buggy = {"T": ported.ensemble_field("T")[:3].astype(np.float64) + 0.5}
    verdicts = pvt.verify_port(buggy)
    v = verdicts["T"]
    print(f"  T      global-mean ok={v.global_mean_ok} "
          f"rmsz ok={v.rmsz_ok} -> {'PASS' if v.passed else 'FAIL'}")
    assert not v.passed
    print("\nThe PVT caught the climate-changing port, as designed.")


if __name__ == "__main__":
    main()
