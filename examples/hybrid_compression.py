#!/usr/bin/env python
"""Hybrid per-variable compression of a history-file archive.

The paper's production vision (Sections 1 and 5.4): compression lives in
the post-processing step that converts time-slice history files into
per-variable time-series files, and every variable gets the most
aggressive codec variant that still passes the verification suite.

This example:

1. writes a month of CAM-like history files (NCH format, one per step);
2. builds hybrid plans for all four methods against the PVT ensemble;
3. converts the archive to per-variable time series with the fpzip plan;
4. reports the storage ledger: raw vs lossless-only vs hybrid.

Run:  python examples/hybrid_compression.py
"""

import tempfile
from pathlib import Path

from repro.config import example_scale
from repro.harness.report import render_table
from repro.hybrid import build_all_hybrids
from repro.model import CAMEnsemble
from repro.ncio import TimeSeriesFile, convert_to_timeseries, write_history


def main() -> None:
    config = example_scale(ne=5, nlev=8, n_members=31, n_2d=12, n_3d=12)
    print(f"Building a {config.n_members}-member verification ensemble "
          f"({config.n_variables} variables) ...")
    ensemble = CAMEnsemble(config)

    workdir = Path(tempfile.mkdtemp(prefix="repro-hybrid-"))
    n_steps = 4
    history_paths = []
    for step in range(n_steps):
        snap = ensemble.history_snapshot(step)
        history_paths.append(
            write_history(workdir / f"cam.h0.{step:04d}.nch", snap,
                          nlev=config.nlev, attrs={"step": step})
        )
    raw_bytes = sum(
        v.nbytes for v in ensemble.history_snapshot(0).values()
    ) * n_steps
    history_bytes = sum(p.stat().st_size for p in history_paths)

    print("Selecting per-variable variants "
          "(most compressive passing all four tests) ...")
    hybrids = build_all_hybrids(ensemble, run_bias=False)

    rows = []
    for family in ("GRIB2", "ISABELA", "fpzip", "APAX", "NetCDF-4"):
        s = hybrids[family].summary()
        comp = hybrids[family].composition()
        label = " + ".join(f"{v}x{n}" for v, n in sorted(comp.items()))
        rows.append([family, s["avg_cr"], s["best_cr"], s["worst_cr"],
                     s["avg_rho"], label])
    print(render_table(
        ["method", "avg CR", "best", "worst", "avg rho", "composition"],
        rows, title="\nTable 7/8 analogue: hybrid methods",
    ))

    print("\nConverting time slices -> compressed per-variable time series "
          "with the fpzip plan ...")
    plan = hybrids["fpzip"].plan()
    out = convert_to_timeseries(history_paths, workdir / "timeseries",
                                plan=plan)
    ts_bytes = sum(p.stat().st_size for p in out.values())

    print(f"\nStorage ledger for {n_steps} history steps:")
    print(f"  raw float32 fields     : {raw_bytes / 1e6:8.2f} MB")
    print(f"  NCH history files (NC) : {history_bytes / 1e6:8.2f} MB "
          f"(CR {history_bytes / raw_bytes:.2f})")
    print(f"  hybrid time series     : {ts_bytes / 1e6:8.2f} MB "
          f"(CR {ts_bytes / raw_bytes:.2f})")

    # Prove a random-access read works on the compressed archive.
    with TimeSeriesFile(out["U"]) as ts:
        step2 = ts.read_step(2)
    print(f"\nRandom-access read of U at step 2: shape {step2.shape}, "
          f"mean {step2.mean():.3f} m/s")
    print(f"Artifacts left in {workdir}")


if __name__ == "__main__":
    main()
