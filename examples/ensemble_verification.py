#!/usr/bin/env python
"""Ensemble verification: is compression climate-changing?

Reproduces the paper's Section 4.3 workflow end-to-end:

1. run a perturbed-initial-condition ensemble (O(1e-14) perturbations on
   a chaotic dycore — the CESM-PVT setup);
2. pick three random members, compress and reconstruct them with a codec;
3. check the reconstructed members against the ensemble's natural
   variability: RMSZ distribution + eq. 8 closeness, E_nmax distribution +
   eq. 11 ratio, Pearson rho >= 0.99999, and the whole-ensemble bias
   regression with 95% confidence rectangles (eq. 9).

Run:  python examples/ensemble_verification.py [variant] [variable]
      e.g. python examples/ensemble_verification.py fpzip-16 Z3
"""

import sys

from repro.compressors import get_variant
from repro.config import example_scale
from repro.model import CAMEnsemble
from repro.pvt import CesmPvt


def main() -> None:
    variant = sys.argv[1] if len(sys.argv) > 1 else "fpzip-24"
    variable = sys.argv[2] if len(sys.argv) > 2 else "U"

    config = example_scale(ne=6, nlev=8, n_members=41, n_2d=10, n_3d=10)
    print(f"Running a {config.n_members}-member ensemble "
          f"(ne={config.ne}, {config.ncol} columns) ...")
    ensemble = CAMEnsemble(config)
    pvt = CesmPvt(ensemble)
    codec = get_variant(variant)

    print(f"Verifying {variant} on variable {variable} "
          f"(test members {pvt.test_members.tolist()})\n")
    report = pvt.evaluate_codec(codec, variables=[variable], run_bias=True)
    verdict = report.verdicts[variable]

    dist = verdict.rmsz.detail["distribution"]
    print(f"RMSZ ensemble distribution: [{dist.min():.3f}, {dist.max():.3f}]")
    for member, d in verdict.rmsz.detail["members"].items():
        print(
            f"  member {member:3d}: original RMSZ {d['original']:.3f} -> "
            f"reconstructed {d['reconstructed']:.3f} "
            f"(within={d['within']}, |diff|<=0.1: {d['close']})"
        )
    print(f"  => RMSZ ensemble test: "
          f"{'PASS' if verdict.rmsz.passed else 'FAIL'}\n")

    edist = verdict.enmax.detail["distribution"]
    print(f"E_nmax ensemble range: {edist.max() - edist.min():.3e}")
    for member, d in verdict.enmax.detail["members"].items():
        print(f"  member {member:3d}: e_nmax {d['e_nmax']:.3e} "
              f"(within={d['within']}, ratio<=1/10: {d['small']})")
    print(f"  => E_nmax ensemble test: "
          f"{'PASS' if verdict.enmax.passed else 'FAIL'}\n")

    rho_values = verdict.rho.detail["values"]
    worst_rho = min(rho_values.values())
    print(f"Pearson rho (worst of {len(rho_values)} members): "
          f"{worst_rho:.8f} => "
          f"{'PASS' if verdict.rho.passed else 'FAIL'}\n")

    fit = verdict.bias.detail["regression"]
    print(
        f"Bias regression over all {fit.n} members: slope={fit.slope:.5f} "
        f"in [{fit.slope_ci[0]:.5f}, {fit.slope_ci[1]:.5f}], "
        f"intercept={fit.intercept:.5f}\n"
        f"  rectangle contains (1,0): {fit.contains_ideal()}; "
        f"eq. 9 |s_I - s_WC| = {fit.slope_distance:.4f} <= 0.05: "
        f"{fit.passes()}\n"
    )

    print(f"OVERALL: {variant} on {variable}: "
          f"{'ACCEPTED' if verdict.all_passed else 'REJECTED'} "
          f"(mean CR {verdict.mean_cr:.2f})")
    if not verdict.all_passed:
        print("Try a finer variant (e.g. fpzip-24, APAX-2) or the "
              "lossless fallback.")


if __name__ == "__main__":
    main()
