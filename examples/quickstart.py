#!/usr/bin/env python
"""Quickstart: compress a climate variable and measure what was lost.

Generates a CAM-like zonal-wind field, runs it through every compression
method from the paper (fpzip, ISABELA, GRIB2+JPEG2000, APAX, and the
lossless NetCDF-4 baseline), and prints the paper's Section 4 metrics:
compression ratio (eq. 1), NRMSE (eq. 4), normalized maximum pointwise
error (eq. 2), and the Pearson correlation (eq. 5) with its 0.99999
acceptance threshold.

Run:  python examples/quickstart.py
"""

from repro.compressors import get_variant, paper_variants
from repro.config import RHO_THRESHOLD, example_scale
from repro.harness.report import render_table
from repro.metrics import characterize, nrmse, normalized_max_error, pearson
from repro.model import CAMEnsemble


def main() -> None:
    # A small ensemble is enough for a single-field demo.
    config = example_scale(ne=6, nlev=8, n_members=5, n_2d=10, n_3d=10)
    ensemble = CAMEnsemble(config)
    field = ensemble.member_field("U", 0)

    c = characterize(field)
    print(
        f"Variable U (zonal wind): {field.shape[-1]} columns x "
        f"{field.shape[0]} levels, min={c.x_min:.3g} max={c.x_max:.3g} "
        f"mean={c.mean:.3g} std={c.std:.3g}\n"
        f"Lossless NetCDF-4 CR (eq. 1): {c.lossless_cr:.2f} "
        "(smaller is better)\n"
    )

    rows = []
    for variant in list(paper_variants()) + ["NetCDF-4"]:
        codec = get_variant(variant)
        outcome = codec.roundtrip(field)
        rho = pearson(field, outcome.reconstructed)
        rows.append([
            variant,
            outcome.cr,
            nrmse(field, outcome.reconstructed),
            normalized_max_error(field, outcome.reconstructed),
            rho,
            rho >= RHO_THRESHOLD,
        ])
    print(render_table(
        ["method", "CR", "NRMSE", "e_nmax", "rho", "rho >= .99999"],
        rows,
        title="Compression methods on variable U",
        precision=7,
    ))
    print(
        "\nNote: passing the correlation test is necessary but NOT "
        "sufficient —\nthe paper's ensemble tests (see "
        "examples/ensemble_verification.py) have the final word."
    )


if __name__ == "__main__":
    main()
