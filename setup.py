"""Legacy setup shim.

This offline environment's setuptools lacks PEP 660 editable-install
support without the `wheel` package; keeping a setup.py lets
``pip install -e .`` fall back to the legacy develop path when needed.
"""

import setuptools

setuptools.setup()
